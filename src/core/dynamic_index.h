#ifndef LCCS_CORE_DYNAMIC_INDEX_H_
#define LCCS_CORE_DYNAMIC_INDEX_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/ann_index.h"
#include "core/snapshot.h"
#include "dataset/dataset.h"
#include "storage/vector_store.h"
#include "util/matrix.h"

namespace lccs {
namespace core {

/// Mutable wrapper turning any build-once AnnIndex into an updatable,
/// servable one (the ROADMAP "Incremental updates" item).
///
/// Three structures carry the mutations, the delta-consolidation design of
/// the DiskANN line of work adapted to LCCS-LSH:
///
///   * a static **epoch** (core::EpochState): a snapshot of the points at
///     the last consolidation — a shared storage::VectorStore (heap, the
///     caller's mmap-backed dataset store, or a spill file; see
///     Options::spill_dir) — indexed by the wrapped AnnIndex (LCCS-LSH,
///     linear scan, ...) exactly as if it had been built offline;
///   * an append-only **delta buffer** (core::DeltaBuffer) of vectors
///     inserted since, answered by brute force with the batched SIMD
///     verifier (util::VerifyCandidates makes a few thousand rows
///     essentially free next to the probing cost);
///   * **tombstones** carrying the version of the mutation that set them.
///     Epoch rows already dead at install sit in a frozen base bitmap the
///     wrapped index filters through AnnIndex::set_deleted_filter; removes
///     after the install — epoch or delta — stamp a per-row atomic version
///     instead, so any point in mutation history can still be read.
///
/// Reads are MVCC snapshots: AcquireSnapshot() captures the epoch
/// shared_ptr, the delta buffer shared_ptr, the delta prefix length and the
/// mutation version in O(1) under the reader lock, and the returned
/// core::Snapshot then answers queries with no lock held — concurrent
/// inserts, removes and epoch installs never perturb it (the bit-stability
/// property tests/test_dynamic_concurrency.cc races under TSAN). Query and
/// QueryBatch are one-shot snapshots: acquire, answer, release — the same
/// linearization point the old lock-the-world read path had, with the lock
/// held only for the capture. Queries answer over (epoch ∪ delta) ∖
/// tombstones, merging the two partial results by (distance, id) — ids are
/// global, assigned in insert order, so the merged ranking is exactly the
/// ranking an index over the surviving points would produce (the
/// oracle-equivalence property tests/test_dynamic_index.cc locks down).
///
/// When the delta outgrows Options::rebuild_threshold (or accumulated
/// epoch tombstones do — they widen every snapshot's over-fetch margin), an
/// **epoch rebuild** consolidates survivors into a fresh static index on a
/// dedicated background thread: the heavy build runs from an immutable
/// capture without blocking anything, queries keep being served from the
/// old epoch, and the finished epoch is installed with a shared_ptr swap
/// under the writer lock — the only pause writers or readers ever see is
/// the O(remaining delta) reconciliation, measured by bench/micro_dynamic.
/// Snapshots acquired before the install keep the retired epoch and delta
/// buffer alive and bit-identical for as long as they are held. (A
/// dedicated thread and not ThreadPool::Submit: the rebuild blocks on the
/// index rwlock, which Submit's no-blocking contract forbids — a QueryBatch
/// caller helping to drain a ParallelRange could steal the task and
/// deadlock against the shared lock it already holds.)
///
/// Thread safety: Query/QueryBatch/AcquireSnapshot take a reader lock and
/// may run freely in parallel; Insert/Remove take the writer lock and may
/// be called from any thread. tests/test_dynamic_concurrency.cc stresses
/// queries and held snapshots against inserts and a mid-query rebuild under
/// TSAN.
class DynamicIndex : public baselines::AnnIndex {
 public:
  /// Creates the epoch index for a snapshot. Called once per consolidation
  /// with no arguments; the returned index is then Built over the snapshot
  /// dataset. The index must honor set_deleted_filter (every index in this
  /// repository routes verification through util::VerifyCandidates and
  /// does).
  using Factory = std::function<std::unique_ptr<baselines::AnnIndex>()>;

  struct Options {
    util::Metric metric = util::Metric::kEuclidean;
    /// Dimensionality; required when inserting into a never-Built index
    /// (Build overrides it from the dataset).
    size_t dim = 0;
    /// Delta size (or post-install epoch-tombstone count) that triggers
    /// consolidation into a fresh epoch.
    size_t rebuild_threshold = 1024;
    /// Consolidate on a dedicated background thread (true) or only when the
    /// caller invokes Consolidate() explicitly (false — deterministic, used
    /// by the property tests and benches that sweep delta sizes).
    bool background_rebuild = true;
    /// Builds a storage::QuantizedStore over every epoch snapshot (and
    /// encodes delta inserts under its codebook), enabling the int8
    /// two-phase verification in the wrapped index and the delta scan.
    /// Off by default: quantized serving is an explicit opt-in — exact
    /// oracle-equivalence tests and small indexes gain nothing from it.
    bool quantize = false;
    /// When non-empty, consolidation *spills*: survivors are streamed into a
    /// flat file under this directory (O(row) memory — the base set is never
    /// materialized on the heap) and the new epoch is a memory-mapped
    /// storage::MmapStore over it, unlinked automatically when the epoch is
    /// released. The disk-resident counterpart of the default heap epochs;
    /// required for mmap-backed indexes that must stay inside an RSS budget
    /// across consolidations. The directory must exist and be writable.
    std::string spill_dir;
  };

  DynamicIndex(Factory factory, Options options);
  /// Waits for an in-flight background rebuild (the task references this).
  ~DynamicIndex() override;

  // --- AnnIndex interface -------------------------------------------------

  /// Bulk load: the epoch snapshot *shares* the dataset's vector store
  /// (zero-copy — for a memory-mapped store the base set is never
  /// duplicated). The Dataset struct itself still need not outlive the
  /// index: the store is kept alive by the shared handle, and the handles
  /// are copy-on-write, so the caller mutating its dataset afterwards
  /// writes into a private clone — exactly the isolation the old deep copy
  /// provided. Points get ids 0..n-1; previous contents, delta, tombstones
  /// and the mutation version are discarded.
  void Build(const dataset::Dataset& data) override;

  /// k nearest surviving neighbors by true distance, global ids.
  /// Equivalent to AcquireSnapshot().Query(query, k).
  std::vector<util::Neighbor> Query(const float* query,
                                    size_t k) const override;

  /// Batched queries over one snapshot; identical to per-row Query by
  /// construction (see Snapshot::QueryBatch).
  std::vector<std::vector<util::Neighbor>> QueryBatch(
      const float* queries, size_t num_queries, size_t k,
      size_t num_threads = 0) const override;

  /// Appends a dim()-dimensional vector; returns its global id (insert
  /// order, monotone). May trigger a background consolidation.
  int32_t Insert(const float* vec) override;

  /// Tombstones the point with global id `id`; returns false when the id
  /// was never assigned or is already deleted. O(1): the static epoch is
  /// not touched until the next consolidation. May trigger a background
  /// consolidation once enough epoch rows are stamped.
  bool Remove(int32_t id) override;

  /// Refused (throws std::runtime_error for a non-null bitmap): this index
  /// manages its own tombstones via Remove, and an external bitmap indexed
  /// by this wrapper's global ids would silently conflict with them.
  /// Accepting it quietly would break the honor-the-filter contract every
  /// other AnnIndex keeps, so the conflict fails loudly instead.
  void set_deleted_filter(const std::vector<uint8_t>* deleted) override;

  size_t dim() const override;
  size_t IndexSizeBytes() const override;
  std::string name() const override;
  util::Metric metric() const;

  // --- MVCC snapshots -----------------------------------------------------

  /// O(1) immutable read view of the current state: pins the epoch, the
  /// delta buffer, the delta prefix and the mutation version under one
  /// reader-lock hold, then serves queries lock-free. Never blocks writers
  /// beyond the capture; holding the snapshot keeps its generation alive
  /// across any number of mutations and consolidations.
  Snapshot AcquireSnapshot() const;

  /// Mutations (Insert/Remove) applied so far; Build resets it to 0. The
  /// version a snapshot acquired now would carry.
  uint64_t version() const;

  // --- Mutation / epoch introspection ------------------------------------

  size_t live_count() const;       ///< surviving points
  size_t epoch_size() const;       ///< rows in the static snapshot
  size_t delta_size() const;       ///< delta rows (live + tombstoned)
  size_t tombstone_count() const;  ///< tombstones not yet consolidated away
  uint64_t epoch_sequence() const; ///< consolidations completed so far
  bool Contains(int32_t id) const; ///< id assigned and not deleted

  /// One mutually-consistent snapshot of the counters above — what an
  /// external consolidation scheduler (serve::ShardedIndex::MaintainShards)
  /// keys its decisions on. Reading the individual accessors back-to-back
  /// can interleave with a mutation or an epoch install and yield an
  /// impossible combination (e.g. delta_rows past the threshold of an epoch
  /// that just absorbed it); this takes the reader lock once.
  struct Stats {
    size_t live = 0;            ///< surviving points
    size_t epoch_rows = 0;      ///< rows in the static snapshot
    size_t delta_rows = 0;      ///< delta rows (live + tombstoned)
    size_t tombstones = 0;      ///< tombstones not yet consolidated away
    /// Epoch rows stamped since the install — the over-fetch margin every
    /// snapshot query currently pays (consolidation resets it).
    size_t epoch_stamped = 0;
    uint64_t epoch_sequence = 0;
    uint64_t version = 0;       ///< mutations applied so far
    bool rebuild_in_flight = false;
  };
  Stats stats() const;

  /// True while a consolidation (background or synchronous) is running —
  /// the signal a scheduler uses to bound concurrent rebuilds across shards
  /// instead of stacking TriggerRebuild calls that would all be refused.
  bool rebuild_in_flight() const;

  /// Copies the surviving vectors in ascending global-id order; `ids`
  /// (optional) receives the matching global ids. This is the from-scratch
  /// rebuild input — the oracle tests and eval::DynamicRecall build their
  /// exact reference over it.
  util::Matrix LiveVectors(std::vector<int32_t>* ids = nullptr) const;

  /// Starts a background consolidation on a dedicated thread if none is in
  /// flight; returns false when one already is (or there is nothing to
  /// consolidate). Queries and mutations proceed while it runs.
  bool TriggerRebuild();

  /// Synchronous consolidation: triggers a rebuild (or adopts the one in
  /// flight) and waits for it to finish.
  void Consolidate();

  /// Blocks until no rebuild is in flight. Rethrows the first exception a
  /// background rebuild died with (the error is cleared).
  void WaitForRebuild() const;

  // --- Persistence hooks (used by core/serialize.h) -----------------------

  /// Writes the epoch payload of the wrapped index (e.g. its CSA). Receives
  /// the built epoch index; layered this way so DynamicIndex stays agnostic
  /// of what the wrapped index persists.
  using EpochWriter =
      std::function<void(std::ostream&, const baselines::AnnIndex&)>;
  /// Restores an epoch index from its payload, bound to the snapshot
  /// dataset (which outlives it inside the DynamicIndex).
  using EpochReader = std::function<std::unique_ptr<baselines::AnnIndex>(
      std::istream&, const dataset::Dataset&)>;

  /// Streams the full mutable state — epoch snapshot, global ids, both
  /// tombstone regions (version stamps collapse to plain bitmap bytes; a
  /// save has a single version, the present), the delta buffer and the id
  /// counter — under the reader lock, delegating the wrapped index's
  /// payload to `writer`.
  ///
  /// With `external_vectors` the epoch's floats are NOT inlined: the stream
  /// records the backing flat file's path, checksum and row offset instead
  /// (out-of-line mode), and DeserializeState re-maps and re-validates that
  /// file. Requires the epoch store to be mmap-backed (storage::MmapStore
  /// or a slice of one) and its file persistent: a heap epoch, or a spill
  /// epoch whose file self-deletes on release (Options::spill_dir), throws
  /// std::invalid_argument — recording a path that is about to be unlinked
  /// would produce a save that silently stops loading.
  void SerializeState(std::ostream& out, const EpochWriter& writer,
                      bool external_vectors = false) const;

  /// Rebuilds a DynamicIndex from a SerializeState stream. Throws
  /// std::runtime_error on malformed or truncated input.
  static std::unique_ptr<DynamicIndex> DeserializeState(
      std::istream& in, Factory factory, Options options,
      const EpochReader& reader);

 private:
  /// Where a live global id currently resides.
  struct Location {
    bool in_delta = false;
    size_t pos = 0;  ///< epoch row or delta slot
  };

  /// Builds an EpochState over the store behind `rows` (global-id
  /// ascending) via the factory and installs the deleted filter. Static so
  /// the background task can run it without touching any member state.
  static std::shared_ptr<EpochState> BuildEpoch(const Factory& factory,
                                                util::Metric metric,
                                                size_t dim,
                                                storage::VectorStoreRef rows,
                                                std::vector<int32_t> ids,
                                                bool quantize);

  /// Snapshot capture body; caller must hold mutex_ (either mode).
  Snapshot AcquireSnapshotLocked() const;
  /// LiveVectors body; caller must hold mutex_ (either mode).
  util::Matrix LiveVectorsLocked(std::vector<int32_t>* ids) const;
  /// Makes room for one more delta slot: allocates the first buffer, or
  /// clones into a doubled successor when full — the version-chain step
  /// that lets snapshots keep reading the retired buffer. Caller must hold
  /// the writer lock.
  void EnsureDeltaCapacityLocked();

  /// Claims the rebuild-in-flight flag; false if already claimed.
  bool ClaimRebuild();
  /// Spawns rebuild_thread_ running RunRebuild (joining the previous,
  /// already-finished thread first). Caller must have won ClaimRebuild.
  void LaunchRebuild();
  /// The consolidation pipeline: capture (reader lock) -> build (no lock)
  /// -> install (writer lock). Runs on rebuild_thread_ or inline
  /// (Consolidate).
  void RunRebuild();
  void FinishRebuild(std::exception_ptr error);

  /// Reader lock with writer-starvation protection: pthread rwlocks (behind
  /// std::shared_mutex on glibc) admit new readers while a writer waits, so
  /// a steady query stream could park Insert/Remove/install forever. Writers
  /// hold gate_ while acquiring exclusivity; readers tap it first, so they
  /// queue up behind a pending writer instead of starving it.
  std::shared_lock<std::shared_mutex> ReadLock() const;
  std::unique_lock<std::shared_mutex> WriteLock() const;

  Factory factory_;
  Options options_;

  /// Guards every field below. Queries / snapshot capture: shared (via
  /// ReadLock). Mutations + install: exclusive (via WriteLock). Tombstone
  /// stamps are additionally atomic because pinned snapshots read them with
  /// no lock held while later removes store new stamps.
  mutable std::shared_mutex mutex_;
  mutable std::mutex gate_;
  std::shared_ptr<EpochState> epoch_;
  std::shared_ptr<DeltaBuffer> delta_;  ///< current generation, may be null
  size_t delta_len_ = 0;                ///< used slots of delta_
  std::unordered_map<int32_t, Location> live_;
  int32_t next_id_ = 0;
  uint64_t version_ = 0;        ///< mutations applied (stamp source)
  size_t epoch_removed_ = 0;    ///< epoch rows stamped since install
  uint64_t epoch_sequence_ = 0;

  /// Rebuild coordination. Never held while acquiring mutex_.
  mutable std::mutex rebuild_mutex_;
  mutable std::condition_variable rebuild_cv_;
  mutable bool rebuild_in_flight_ = false;
  mutable std::exception_ptr rebuild_error_;
  /// Background consolidation thread. Launched and joined under
  /// rebuild_mutex_ (LaunchRebuild); the destructor joins it lock-free
  /// after draining the claim, when no other caller may touch the object.
  std::thread rebuild_thread_;
};

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_DYNAMIC_INDEX_H_
