#include "core/csa.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <numeric>
#include <ostream>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace lccs {
namespace core {

void CircularShiftArray::Build(const HashValue* strings, size_t n, size_t m) {
  assert(n >= 1 && m >= 1);
  n_ = n;
  m_ = m;
  data_.assign(strings, strings + n * m);
  sorted_.assign(m * n, 0);
  next_.assign(m * n, 0);

  // Shift 0 is sorted directly with the circular comparator (ties by id so
  // builds are deterministic).
  int32_t* order0 = sorted_.data();
  std::iota(order0, order0 + n, 0);
  std::sort(order0, order0 + n, [this](int32_t a, int32_t b) {
    int32_t lcp = 0;
    const int cmp = CompareShifted(String(a), String(b), m_, 0, &lcp);
    if (cmp != 0) return cmp < 0;
    return a < b;
  });

  // rank[id] = position of id in the most recently computed sorted index.
  std::vector<int32_t> rank(n);
  for (size_t pos = 0; pos < n; ++pos) rank[order0[pos]] = static_cast<int32_t>(pos);

  // Derive the remaining shift orders from their successors, in decreasing
  // shift order: shift(T, i) = [t_i] ++ (shift(T, i+1) minus its last
  // element), so sorting by the pair (t_i, rank at shift i+1) reproduces the
  // shift-i lexicographic order (see class comment).
  std::vector<int32_t> succ_rank = rank;  // rank at shift (i+1) % m
  for (size_t i = m; i-- > 1;) {
    int32_t* order = sorted_.data() + i * n;
    std::iota(order, order + n, 0);
    const HashValue* column_base = data_.data() + i;
    std::sort(order, order + n,
              [this, column_base, &succ_rank](int32_t a, int32_t b) {
                const HashValue ca = column_base[static_cast<size_t>(a) * m_];
                const HashValue cb = column_base[static_cast<size_t>(b) * m_];
                if (ca != cb) return ca < cb;
                return succ_rank[a] < succ_rank[b];
              });
    for (size_t pos = 0; pos < n; ++pos) {
      succ_rank[order[pos]] = static_cast<int32_t>(pos);
    }
  }

  // Next links: N_i[pos] = position in I_{(i+1) % m} of the string at
  // position pos of I_i (Algorithm 1, lines 3-7).
  for (size_t i = 0; i < m; ++i) {
    const int32_t* cur = sorted_.data() + i * n;
    const int32_t* nxt = sorted_.data() + ((i + 1) % m) * n;
    for (size_t pos = 0; pos < n; ++pos) rank[nxt[pos]] = static_cast<int32_t>(pos);
    int32_t* link = next_.data() + i * n;
    for (size_t pos = 0; pos < n; ++pos) link[pos] = rank[cur[pos]];
  }
}

int CircularShiftArray::Compare(int32_t id, const HashValue* query,
                                size_t shift, int32_t* lcp) const {
  return CompareShifted(String(id), query, m_, shift, lcp);
}

CircularShiftArray::ShiftBounds CircularShiftArray::SearchShift(
    const HashValue* query, size_t shift, int32_t lo, int32_t hi) const {
  assert(lo >= 0 && hi < static_cast<int32_t>(n_) && lo <= hi);
  // Find the first position in [lo, hi] whose string compares greater than
  // shift(Q, shift); everything before it is <= Q.
  int32_t left = lo;
  int32_t right = hi + 1;
  while (left < right) {
    const int32_t mid = left + (right - left) / 2;
    int32_t lcp = 0;
    const int cmp = Compare(SortedId(shift, mid), query, shift, &lcp);
    if (cmp > 0) {
      right = mid;
    } else {
      left = mid + 1;
    }
  }
  ShiftBounds b;
  b.pos_lo = left - 1;
  b.pos_hi = left;
  if (b.pos_lo >= 0) {
    b.len_lo = Lcp(SortedId(shift, b.pos_lo), query, shift);
  }
  if (b.pos_hi < static_cast<int32_t>(n_)) {
    b.len_hi = Lcp(SortedId(shift, b.pos_hi), query, shift);
  }
  return b;
}

std::vector<LccsCandidate> CircularShiftArray::Search(const HashValue* query,
                                                      size_t k) const {
  std::vector<ShiftBounds> state;
  return Search(query, k, &state);
}

std::vector<LccsCandidate> CircularShiftArray::Search(
    const HashValue* query, size_t k, std::vector<ShiftBounds>* state) const {
  assert(!empty());
  const auto n = static_cast<int32_t>(n_);
  state->assign(m_, ShiftBounds{});
  std::priority_queue<HeapEntry> pq;

  auto push_bounds = [&](size_t shift, const ShiftBounds& b) {
    if (b.pos_lo >= 0) {
      pq.push({b.len_lo, b.pos_lo, static_cast<int32_t>(shift), 0, -1});
    }
    if (b.pos_hi < n) {
      pq.push({b.len_hi, b.pos_hi, static_cast<int32_t>(shift), 0, +1});
    }
  };

  // Line 2 of Algorithm 2: one full binary search on I_0.
  (*state)[0] = SearchShift(query, 0, 0, n - 1);
  push_bounds(0, (*state)[0]);

  // Lines 5-11: narrowed binary searches driven by the next links
  // (Corollary 3.2); fall back to a full search when the previous shift
  // matched less than one symbol.
  for (size_t i = 1; i < m_; ++i) {
    const ShiftBounds& prev = (*state)[i - 1];
    ShiftBounds b;
    if (use_narrowing_ && prev.pos_lo >= 0 && prev.pos_hi < n &&
        prev.len_lo >= 1 && prev.len_hi >= 1) {
      const int32_t lo = NextPosition(i - 1, prev.pos_lo);
      const int32_t hi = NextPosition(i - 1, prev.pos_hi);
      if (lo <= hi) {
        b = SearchShift(query, i, lo, hi);
      } else {
        b = SearchShift(query, i, 0, n - 1);
      }
    } else {
      b = SearchShift(query, i, 0, n - 1);
    }
    (*state)[i] = b;
    push_bounds(i, b);
  }

  // Lines 12-15: pop the frontier in non-increasing LCP order; per shift and
  // direction the LCP is monotone non-increasing away from the query
  // position (Fact 3.2), so the first pop of an id yields |LCCS(T_id, Q)|.
  std::vector<LccsCandidate> result;
  result.reserve(std::min<size_t>(k, n_));
  std::unordered_set<int32_t> seen;
  seen.reserve(2 * k);
  while (result.size() < k && !pq.empty()) {
    const HeapEntry e = pq.top();
    pq.pop();
    const int32_t id = SortedId(e.shift, e.pos);
    if (seen.insert(id).second) {
      result.push_back({id, e.len});
    }
    const int32_t npos = e.pos + e.dir;
    if (npos >= 0 && npos < n) {
      pq.push({Lcp(SortedId(e.shift, npos), query, e.shift), npos, e.shift, 0,
               e.dir});
    }
  }
  return result;
}

namespace {

constexpr char kMagic[8] = {'L', 'C', 'C', 'S', 'C', 'S', 'A', '1'};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in) throw std::runtime_error("truncated CSA stream");
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

template <typename T>
void ReadVector(std::istream& in, std::vector<T>* v, uint64_t expected) {
  uint64_t size = 0;
  ReadPod(in, &size);
  if (size != expected) {
    throw std::runtime_error("CSA stream: unexpected array size");
  }
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()), size * sizeof(T));
  if (!in) throw std::runtime_error("truncated CSA stream");
}

}  // namespace

void CircularShiftArray::Serialize(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, static_cast<uint64_t>(n_));
  WritePod(out, static_cast<uint64_t>(m_));
  WriteVector(out, data_);
  WriteVector(out, sorted_);
  WriteVector(out, next_);
}

CircularShiftArray CircularShiftArray::Deserialize(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(magic), kMagic)) {
    throw std::runtime_error("not a CSA stream (bad magic)");
  }
  uint64_t n = 0, m = 0;
  ReadPod(in, &n);
  ReadPod(in, &m);
  if (n == 0 || m == 0) throw std::runtime_error("CSA stream: empty index");
  CircularShiftArray csa;
  csa.n_ = n;
  csa.m_ = m;
  ReadVector(in, &csa.data_, n * m);
  ReadVector(in, &csa.sorted_, m * n);
  ReadVector(in, &csa.next_, m * n);
  for (const int32_t pos : csa.next_) {
    if (pos < 0 || pos >= static_cast<int32_t>(n)) {
      throw std::runtime_error("CSA stream: corrupt next link");
    }
  }
  for (const int32_t id : csa.sorted_) {
    if (id < 0 || id >= static_cast<int32_t>(n)) {
      throw std::runtime_error("CSA stream: corrupt sorted index");
    }
  }
  return csa;
}

}  // namespace core
}  // namespace lccs
