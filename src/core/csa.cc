#include "core/csa.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "core/stream_io.h"

namespace lccs {
namespace core {

void CircularShiftArray::Build(const HashValue* strings, size_t n, size_t m) {
  assert(n >= 1 && m >= 1);
  // HeapKey field widths (see PackHeapKey): shift/len take 12 bits, pos 31.
  assert(m <= 0xFFF && n <= 0x7FFFFFFF);
  n_ = n;
  m_ = m;
  data_.assign(strings, strings + n * m);
  sorted_.assign(m * n, 0);
  next_.assign(m * n, 0);
  if (next_released_) {
    // Rebuilding restores the links a prior ReleaseNextLinks dropped.
    next_released_ = false;
    use_narrowing_ = true;
  }

  // Shift 0 is sorted directly with the circular comparator (ties by id so
  // builds are deterministic).
  int32_t* order0 = sorted_.data();
  std::iota(order0, order0 + n, 0);
  std::sort(order0, order0 + n, [this](int32_t a, int32_t b) {
    int32_t lcp = 0;
    const int cmp = CompareShifted(String(a), String(b), m_, 0, &lcp);
    if (cmp != 0) return cmp < 0;
    return a < b;
  });

  // rank[id] = position of id in the most recently computed sorted index.
  std::vector<int32_t> rank(n);
  for (size_t pos = 0; pos < n; ++pos) rank[order0[pos]] = static_cast<int32_t>(pos);

  // Derive the remaining shift orders from their successors, in decreasing
  // shift order: shift(T, i) = [t_i] ++ (shift(T, i+1) minus its last
  // element), so sorting by the pair (t_i, rank at shift i+1) reproduces the
  // shift-i lexicographic order (see class comment).
  std::vector<int32_t> succ_rank = rank;  // rank at shift (i+1) % m
  for (size_t i = m; i-- > 1;) {
    int32_t* order = sorted_.data() + i * n;
    std::iota(order, order + n, 0);
    const HashValue* column_base = data_.data() + i;
    std::sort(order, order + n,
              [this, column_base, &succ_rank](int32_t a, int32_t b) {
                const HashValue ca = column_base[static_cast<size_t>(a) * m_];
                const HashValue cb = column_base[static_cast<size_t>(b) * m_];
                if (ca != cb) return ca < cb;
                return succ_rank[a] < succ_rank[b];
              });
    for (size_t pos = 0; pos < n; ++pos) {
      succ_rank[order[pos]] = static_cast<int32_t>(pos);
    }
  }

  // Next links: N_i[pos] = position in I_{(i+1) % m} of the string at
  // position pos of I_i (Algorithm 1, lines 3-7).
  for (size_t i = 0; i < m; ++i) {
    const int32_t* cur = sorted_.data() + i * n;
    const int32_t* nxt = sorted_.data() + ((i + 1) % m) * n;
    for (size_t pos = 0; pos < n; ++pos) rank[nxt[pos]] = static_cast<int32_t>(pos);
    int32_t* link = next_.data() + i * n;
    for (size_t pos = 0; pos < n; ++pos) link[pos] = rank[cur[pos]];
  }
}

int CircularShiftArray::Compare(int32_t id, const HashValue* query,
                                size_t shift, int32_t* lcp) const {
  return CompareShifted(String(id), query, m_, shift, lcp);
}

CircularShiftArray::ShiftBounds CircularShiftArray::SearchShift(
    const HashValue* query, size_t shift, int32_t lo, int32_t hi) const {
  assert(lo >= 0 && hi < static_cast<int32_t>(n_) && lo <= hi);
  // Find the first position in [lo, hi] whose string compares greater than
  // shift(Q, shift); everything before it is <= Q. Manber–Myers LCP bounds:
  // whenever both ends of the open interval (left-1, right) have had their
  // LCP against the query measured, every string strictly between them
  // shares at least min(llcp, rlcp) leading symbols with the query (sorted
  // strings between two strings with a common prefix also carry it), so
  // each probe resumes comparing at that offset instead of at symbol 0 —
  // with the deep collision runs a small bucket width w produces, that is
  // the difference between O(log n) and O(m log n) symbol reads per shift.
  int32_t left = lo;
  int32_t right = hi + 1;
  int32_t llcp = 0, rlcp = 0;     // LCP(query, ...) at left-1 / right
  bool lvalid = false, rvalid = false;  // initial bounds were never probed
  while (left < right) {
    const int32_t mid = left + (right - left) / 2;
    const int32_t skip =
        std::min(lvalid ? llcp : 0, rvalid ? rlcp : 0);
    int32_t lcp = 0;
    const int cmp =
        CompareShifted(String(SortedId(shift, mid)), query, m_, shift, &lcp,
                       skip);
    if (cmp > 0) {
      right = mid;
      rlcp = lcp;
      rvalid = true;
    } else {
      left = mid + 1;
      llcp = lcp;
      lvalid = true;
    }
  }
  ShiftBounds b;
  b.pos_lo = left - 1;
  b.pos_hi = left;
  if (b.pos_lo >= 0) {
    b.len_lo = lvalid ? llcp : Lcp(SortedId(shift, b.pos_lo), query, shift);
  }
  if (b.pos_hi < static_cast<int32_t>(n_)) {
    b.len_hi = rvalid ? rlcp : Lcp(SortedId(shift, b.pos_hi), query, shift);
  }
  return b;
}

CircularShiftArray::ShiftBounds CircularShiftArray::SearchShiftFrom(
    const HashValue* query, size_t shift, const ShiftBounds& prev) const {
  const auto n = static_cast<int32_t>(n_);
  if (use_narrowing_ && prev.pos_lo >= 0 && prev.pos_hi < n &&
      prev.len_lo >= 1 && prev.len_hi >= 1) {
    const int32_t lo = NextPosition(shift - 1, prev.pos_lo);
    const int32_t hi = NextPosition(shift - 1, prev.pos_hi);
    if (lo <= hi) return SearchShift(query, shift, lo, hi);
  }
  return SearchShift(query, shift, 0, n - 1);
}

void CircularShiftArray::SearchScratch::Begin(size_t n, size_t m,
                                              size_t positions) {
  if (seen.size() < n) seen.assign(n, 0);
  if (positions > 0 && visited.size() < m * n) visited.assign(m * n, 0);
  heap.clear();
  if (++stamp == 0) {
    // Stamp wraparound (every 255 queries on one scratch with uint8
    // stamps): stale stamps could alias, so pay one full reset and restart
    // at 1 — n + m*n bytes every 255 queries is noise next to the lookups
    // the byte-dense arrays save on every query.
    std::fill(seen.begin(), seen.end(), 0);
    std::fill(visited.begin(), visited.end(), 0);
    stamp = 1;
  }
}

void CircularShiftArray::PushBounds(const ShiftBounds& b, size_t shift,
                                    int32_t probe,
                                    SearchScratch* scratch) const {
  const auto n = static_cast<int32_t>(n_);
  assert(probe >= 0 && probe <= 0xFF);
  auto& heap = scratch->heap;
  if (b.pos_lo >= 0) {
    heap.push_back(PackHeapKey(b.len_lo, static_cast<int32_t>(shift),
                               b.pos_lo, probe, -1));
    std::push_heap(heap.begin(), heap.end());
  }
  if (b.pos_hi < n) {
    heap.push_back(PackHeapKey(b.len_hi, static_cast<int32_t>(shift),
                               b.pos_hi, probe, +1));
    std::push_heap(heap.begin(), heap.end());
  }
}

void CircularShiftArray::SearchBounds(const HashValue* query,
                                      SearchScratch* scratch) const {
  assert(!empty());
  const auto n = static_cast<int32_t>(n_);
  scratch->state.assign(m_, ShiftBounds{});
  // Line 2 of Algorithm 2: one full binary search on I_0, then lines 5-11:
  // narrowed binary searches driven by the next links (Corollary 3.2),
  // falling back to a full search when the previous shift matched less than
  // one symbol.
  scratch->state[0] = SearchShift(query, 0, 0, n - 1);
  PushBounds(scratch->state[0], 0, 0, scratch);
  for (size_t i = 1; i < m_; ++i) {
    scratch->state[i] = SearchShiftFrom(query, i, scratch->state[i - 1]);
    PushBounds(scratch->state[i], i, 0, scratch);
  }
}

void CircularShiftArray::CollectFromHeap(const HashValue* const* probes,
                                         size_t num_probes, size_t count,
                                         SearchScratch* scratch,
                                         std::vector<LccsCandidate>* out) const {
  // Lines 12-15: pop the frontier in non-increasing LCP order; per shift and
  // direction the LCP is monotone non-increasing away from the query
  // position (Fact 3.2), so the first pop of an id yields |LCCS(T_id, Q)|.
  // HeapEntry's comparator is a total order, so the pop sequence depends
  // only on the set of entries, never on push order or heap layout.
  auto& heap = scratch->heap;
  // Frontier-position dedup matters only when several probes overlap in the
  // sorted orders (Example 4.1): with one probe the lo-chain only ever moves
  // down from pos_lo and the hi-chain up from pos_hi = pos_lo + 1, so no
  // position can be reached twice and the check would never fire.
  const bool dedup_positions = num_probes > 1;
  while (out->size() < count && !heap.empty()) {
    CollectStep(probes, dedup_positions, count, scratch, out);
  }
}

bool CircularShiftArray::CollectStep(const HashValue* const* probes,
                                     bool dedup_positions, size_t count,
                                     SearchScratch* scratch,
                                     std::vector<LccsCandidate>* out) const {
  const auto n = static_cast<int32_t>(n_);
  auto& heap = scratch->heap;
  const uint8_t stamp = scratch->stamp;
  const HeapKey key = heap.front();
  std::pop_heap(heap.begin(), heap.end());
  heap.pop_back();
  struct {
    int32_t len, shift, pos, probe;
    int32_t dir;
  } e{HeapKeyLen(key), HeapKeyShift(key), HeapKeyPos(key), HeapKeyProbe(key),
      HeapKeyDir(key)};
  bool consumed = false;
  if (dedup_positions) {
    uint8_t& mark = scratch->visited[static_cast<size_t>(e.shift) * n_ +
                                      static_cast<size_t>(e.pos)];
    consumed = mark == stamp;
    mark = stamp;
  }
  if (!consumed) {
    const int32_t id = SortedId(e.shift, e.pos);
    uint8_t& seen = scratch->seen[static_cast<size_t>(id)];
    if (seen != stamp) {
      seen = stamp;
      out->push_back({id, e.len});
    }
    // Advance the chain. Two shortcuts, both order-preserving:
    //
    // Fast-forward: skip positions that can no longer contribute — ids
    // already emitted (and, multi-probe, frontier positions another probe
    // already consumed). Each skipped step costs one stamped-array lookup
    // instead of a full heap cycle + LCP over the row's hash string — with
    // m chains surfacing overlapping id sets, duplicate pops otherwise
    // dominate the search (super-linearly in the candidate budget as the
    // unique ids thin out). Marks only accumulate within a query, so a mark
    // observed here would also be observed at the (later) pop of the same
    // entry.
    //
    // Run extension: while the successor's LCP *equals* the popped length,
    // emit it in place instead of cycling it through the heap. The pop
    // order is a total order on (len desc, shift asc, pos asc, probe, dir),
    // so among equal lengths the smallest shift drains first, and within a
    // shift each chain re-enters as the front as long as its length holds
    // (the lo chain's positions only decrease, the hi chain stays above
    // it) — no pending or future entry can interpose inside an equal-LCP
    // run of one chain, and the emitted sequence is exactly the heap's.
    int32_t npos = e.pos + e.dir;
    for (;;) {
      while (npos >= 0 && npos < n) {
        if (dedup_positions &&
            scratch->visited[static_cast<size_t>(e.shift) * n_ +
                             static_cast<size_t>(npos)] == stamp) {
          npos += e.dir;
          continue;
        }
        if (scratch->seen[static_cast<size_t>(SortedId(e.shift, npos))] !=
            stamp) {
          break;
        }
        npos += e.dir;
      }
      if (npos < 0 || npos >= n) break;  // chain exhausted
      const int32_t nid = SortedId(e.shift, npos);
      const int32_t nlen = Lcp(nid, probes[e.probe], e.shift);
      if (nlen != e.len || out->size() >= count) {
        heap.push_back(PackHeapKey(nlen, e.shift, npos, e.probe, e.dir));
        std::push_heap(heap.begin(), heap.end());
        break;
      }
      if (dedup_positions) {
        scratch->visited[static_cast<size_t>(e.shift) * n_ +
                         static_cast<size_t>(npos)] = stamp;
      }
      scratch->seen[static_cast<size_t>(nid)] = stamp;
      out->push_back({nid, nlen});
      npos += e.dir;
    }
  }
  if (out->size() >= count || heap.empty()) return false;
  // The next iteration pops the current top (nothing intervenes on this
  // scratch) and its one cache-missing read is the LCP over the successor's
  // hash string — a random row of data_. Prefetch the line the circular
  // compare starts at; the chain's sorted_ entries are contiguous and almost
  // always already cached, so reading the successor id here is cheap.
  const HeapKey top = heap.front();
  const int32_t tshift = HeapKeyShift(top);
  const int32_t tp = HeapKeyPos(top) + HeapKeyDir(top);
  if (tp >= 0 && tp < n) {
    __builtin_prefetch(String(SortedId(tshift, tp)) + tshift);
  }
  return true;
}

void CircularShiftArray::CollectFromHeapInterleaved(CollectJob* jobs,
                                                    size_t num_jobs,
                                                    size_t count) const {
  // Round-robin scheduler: each turn advances one live query by exactly one
  // pop iteration, then rotates. A query's prefetch therefore has the other
  // queries' turns to complete before its next LCP needs the row — and the
  // memory system holds up to num_jobs independent misses at once instead
  // of the single dependent miss a solo pop chain can express.
  std::vector<uint32_t> live;
  live.reserve(num_jobs);
  for (size_t j = 0; j < num_jobs; ++j) {
    if (jobs[j].out->size() < count && !jobs[j].scratch->heap.empty()) {
      live.push_back(static_cast<uint32_t>(j));
    }
  }
  size_t num_live = live.size();
  while (num_live > 0) {
    size_t w = 0;
    for (size_t i = 0; i < num_live; ++i) {
      const CollectJob& job = jobs[live[i]];
      if (CollectStep(job.probes, job.num_probes > 1, count, job.scratch,
                      job.out)) {
        live[w++] = live[i];
      }
    }
    num_live = w;
  }
}

std::vector<LccsCandidate> CircularShiftArray::Search(const HashValue* query,
                                                      size_t k) const {
  std::vector<ShiftBounds> state;
  return Search(query, k, &state);
}

std::vector<LccsCandidate> CircularShiftArray::Search(
    const HashValue* query, size_t k, std::vector<ShiftBounds>* state) const {
  assert(!empty());
  SearchScratch scratch;
  scratch.Begin(n_, m_, 0);
  SearchBounds(query, &scratch);
  std::vector<LccsCandidate> result;
  result.reserve(std::min<size_t>(k, n_));
  const HashValue* probes[1] = {query};
  CollectFromHeap(probes, 1, k, &scratch, &result);
  *state = std::move(scratch.state);
  return result;
}

namespace {

constexpr char kMagic[8] = {'L', 'C', 'C', 'S', 'C', 'S', 'A', '1'};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in) throw std::runtime_error("truncated CSA stream");
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

template <typename T>
void ReadVector(std::istream& in, std::vector<T>* v, uint64_t expected) {
  uint64_t size = 0;
  ReadPod(in, &size);
  if (size != expected) {
    throw std::runtime_error("CSA stream: unexpected array size");
  }
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()), size * sizeof(T));
  if (!in) throw std::runtime_error("truncated CSA stream");
}

}  // namespace

void CircularShiftArray::ReleaseNextLinks() {
  std::vector<int32_t>().swap(next_);
  use_narrowing_ = false;
  next_released_ = true;
}

void CircularShiftArray::Serialize(std::ostream& out) const {
  if (next_released_) {
    // Programming error, not data corruption: the caller chose the
    // memory-tight mode and must persist before releasing.
    throw std::logic_error(
        "CSA: cannot serialize after ReleaseNextLinks (next links gone)");
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, static_cast<uint64_t>(n_));
  WritePod(out, static_cast<uint64_t>(m_));
  WriteVector(out, data_);
  WriteVector(out, sorted_);
  WriteVector(out, next_);
}

CircularShiftArray CircularShiftArray::Deserialize(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(magic), kMagic)) {
    throw std::runtime_error("not a CSA stream (bad magic)");
  }
  uint64_t n = 0, m = 0;
  ReadPod(in, &n);
  ReadPod(in, &m);
  if (n == 0 || m == 0) throw std::runtime_error("CSA stream: empty index");
  // Header plausibility before any allocation: ids are int32, the n*m
  // element counts below must not wrap uint64, and the three arrays
  // (8-byte count prefix each) must fit inside what the stream can still
  // back — a range-legal corrupt header (e.g. n = 2^32, m = 2^25) must
  // surface as the promised runtime_error, never as bad_alloc/OOM.
  if (n > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    throw std::runtime_error("CSA stream: corrupt header (n exceeds int32)");
  }
  // Build caps m at the HeapKey shift-field width; no well-formed stream
  // can carry more, so reject rather than mis-pack search heap keys later.
  if (m > 0xFFF) {
    throw std::runtime_error("CSA stream: corrupt header (m exceeds 4095)");
  }
  if (m > std::numeric_limits<uint64_t>::max() / n) {
    throw std::runtime_error("CSA stream: corrupt header (n*m overflows)");
  }
  const uint64_t count = n * m;
  const uint64_t budget = io::RemainingBytes(in);
  const uint64_t need_bytes =
      count * sizeof(HashValue) + 2 * count * sizeof(int32_t);
  if (count > std::numeric_limits<uint64_t>::max() /
                  (sizeof(HashValue) + 2 * sizeof(int32_t)) ||
      need_bytes > budget) {
    throw std::runtime_error("CSA stream: arrays larger than stream");
  }
  CircularShiftArray csa;
  csa.n_ = n;
  csa.m_ = m;
  try {
    ReadVector(in, &csa.data_, count);
    ReadVector(in, &csa.sorted_, count);
    ReadVector(in, &csa.next_, count);
  } catch (const std::bad_alloc&) {
    throw std::runtime_error("CSA stream: allocation failed (corrupt sizes)");
  }
  for (const int32_t pos : csa.next_) {
    if (pos < 0 || pos >= static_cast<int32_t>(n)) {
      throw std::runtime_error("CSA stream: corrupt next link");
    }
  }
  for (const int32_t id : csa.sorted_) {
    if (id < 0 || id >= static_cast<int32_t>(n)) {
      throw std::runtime_error("CSA stream: corrupt sorted index");
    }
  }
  return csa;
}

}  // namespace core
}  // namespace lccs
