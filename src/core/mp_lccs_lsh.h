#ifndef LCCS_CORE_MP_LCCS_LSH_H_
#define LCCS_CORE_MP_LCCS_LSH_H_

#include <memory>
#include <vector>

#include "core/lccs_lsh.h"
#include "core/perturbation.h"

namespace lccs {
namespace core {

/// Multi-probe LCCS-LSH (MP-LCCS-LSH, Section 4.2).
///
/// Reuses the single-probe index (same CSA, same family) but probes a
/// sequence of perturbed hash strings H^(t)(q), generated in ascending score
/// order by Algorithm 3 from the family's per-position alternative hash
/// values. For each probe we re-run the binary search only on the *affected*
/// shifts — a shift i is affected when one of the probe's modified positions
/// falls inside the window matched by the base search at i, or when the
/// shift starts at a modified position (the "skip unaffected positions"
/// optimization). All probes feed one shared priority queue, so candidates
/// are still surfaced in globally non-increasing LCP-length order and
/// deduplicated across probes.
///
/// With num_probes == 1 the scheme degenerates to single-probe LCCS-LSH
/// (footnote 13 of the paper).
struct ProbeParams {
  size_t num_probes = 1;        ///< probes per query (1 = single-probe)
  int max_gap = 2;              ///< MAX_GAP of Algorithm 3
  size_t num_alternatives = 4;  ///< alternative hash values per position
  /// Ablation switch for the "skip unaffected positions" optimization of
  /// Section 4.2: when false, every probe re-searches all m shifts.
  /// Candidate quality is unchanged; probing cost grows.
  bool skip_unaffected = true;
};

class MpLccsLsh : public LccsLsh {
 public:
  MpLccsLsh(std::unique_ptr<lsh::HashFamily> family, util::Metric metric,
            ProbeParams params = ProbeParams{});

  const ProbeParams& probe_params() const { return params_; }
  void set_probe_params(const ProbeParams& params) { params_ = params; }

  /// Raw candidates across the probing sequence (no verification). Query and
  /// QueryBatch are inherited from LccsLsh: both dispatch through the
  /// PrepareSearch override below, so the multi-probe scheme gets the
  /// batched engine (shared hashing pass, interleaved heap drain,
  /// deduplicated gather) for free.
  std::vector<LccsCandidate> Candidates(const float* query,
                                        size_t count) const;

 protected:
  /// Extends the base scratch with the multi-probe buffers: perturbed hash
  /// strings live in one flat (num_probes x m) buffer so probe pointers stay
  /// stable, and the alternatives / reach / affected arrays are reused
  /// across the queries served by one scratch.
  struct ProbeScratch : QueryScratch {
    std::vector<HashValue> probe_buf;             ///< flat probe strings
    std::vector<std::vector<lsh::AltHash>> alts;  ///< per-position alts
    std::vector<int32_t> reach;                   ///< matched window lengths
    std::vector<char> affected;                   ///< shifts to re-search
  };
  std::unique_ptr<QueryScratch> MakeScratch() const override;

  /// The multi-probe search of Section 4.2: base cascade via
  /// CircularShiftArray::SearchShiftFrom, perturbed probes re-searching only
  /// affected shifts, all feeding one shared heap (drained by the caller
  /// with cross-probe frontier-position dedup; probe_ptrs point into the
  /// scratch's flat probe buffer).
  void PrepareSearch(const float* query, const HashValue* hash,
                     QueryScratch* scratch) const override;

 private:
  ProbeParams params_;
};

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_MP_LCCS_LSH_H_
