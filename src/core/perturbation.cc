#include "core/perturbation.h"

#include <cassert>

namespace lccs {
namespace core {

PerturbationGenerator::PerturbationGenerator(
    const std::vector<std::vector<lsh::AltHash>>* alternatives, int max_gap)
    : alts_(alternatives), max_gap_(max_gap) {
  assert(alternatives != nullptr);
  assert(max_gap >= 1);
  // Seed the heap with every single-modification vector {(i, alt_0)}
  // (Algorithm 3, lines 3-5).
  const size_t m = alts_->size();
  for (size_t i = 0; i < m; ++i) {
    if ((*alts_)[i].empty()) continue;
    PerturbationVector vec{{static_cast<int32_t>(i), (*alts_)[i][0].value, 0}};
    heap_.push({Score(vec), std::move(vec)});
  }
}

double PerturbationGenerator::Score(const PerturbationVector& vec) const {
  double s = 0.0;
  for (const Perturbation& p : vec) {
    s += (*alts_)[p.pos][p.alt_index].score;
  }
  return s;
}

bool PerturbationGenerator::Next(PerturbationVector* out) {
  // Line 1 of Algorithm 3: the "no perturbation" probe comes first.
  if (!emitted_empty_) {
    emitted_empty_ = true;
    last_score_ = 0.0;
    out->clear();
    return true;
  }
  if (heap_.empty()) return false;

  HeapItem item = heap_.top();
  heap_.pop();
  last_score_ = item.score;
  *out = item.vec;

  const auto m = static_cast<int32_t>(alts_->size());
  const Perturbation& last = item.vec.back();

  // p_shift: advance the last modification to its next alternative.
  if (last.alt_index + 1 < static_cast<int32_t>((*alts_)[last.pos].size())) {
    PerturbationVector shifted = item.vec;
    shifted.back().alt_index = last.alt_index + 1;
    shifted.back().value = (*alts_)[last.pos][last.alt_index + 1].value;
    heap_.push({Score(shifted), std::move(shifted)});
  }

  // p_expand: append the first alternative of position last.pos + gap for
  // every gap up to MAX_GAP (Algorithm 3, lines 11-13).
  for (int gap = 1; gap <= max_gap_; ++gap) {
    const int32_t pos = last.pos + gap;
    if (pos >= m) break;
    if ((*alts_)[pos].empty()) continue;
    PerturbationVector expanded = item.vec;
    expanded.push_back({pos, (*alts_)[pos][0].value, 0});
    heap_.push({Score(expanded), std::move(expanded)});
  }
  return true;
}

}  // namespace core
}  // namespace lccs
