#include "core/rc_nns.h"

#include <cassert>
#include <algorithm>

#include "core/theory.h"

namespace lccs {
namespace core {

RcNearNeighbor::RcNearNeighbor(Params params, util::Metric metric)
    : params_(params), metric_(metric) {
  assert(params_.c > 1.0);
  assert(params_.radius > 0.0);
  assert(params_.m >= 1 && params_.repetitions >= 1);
}

void RcNearNeighbor::Build(const float* data, size_t n, size_t d) {
  const lsh::FamilyKind kind =
      params_.family.value_or(lsh::DefaultFamilyFor(metric_));
  replicas_.clear();
  for (size_t rep = 0; rep < params_.repetitions; ++rep) {
    auto family = lsh::MakeFamily(kind, d, params_.m, params_.w,
                                  params_.seed + 1000003 * rep);
    if (rep == 0) {
      // λ from Theorem 5.1, using the family's own collision probability
      // curve at R and cR. Clamp p1/p2 away from {0, 1} so the formula stays
      // finite for extreme radii.
      p1_ = std::clamp(family->CollisionProbability(params_.radius), 1e-9,
                       1.0 - 1e-9);
      p2_ = std::clamp(
          family->CollisionProbability(params_.c * params_.radius), 1e-9,
          p1_ - 1e-12);
      lambda_ = theory::LambdaForGuarantee(n, params_.m, p1_, p2_);
    }
    auto replica = std::make_unique<LccsLsh>(std::move(family), metric_);
    replica->Build(data, n, d);
    replicas_.push_back(std::move(replica));
  }
}

std::optional<util::Neighbor> RcNearNeighbor::Query(
    const float* query) const {
  assert(!replicas_.empty());
  const double c_radius = params_.c * params_.radius;
  std::optional<util::Neighbor> best;
  for (const auto& replica : replicas_) {
    const auto answers = replica->Query(query, 1, lambda_);
    if (answers.empty()) continue;
    if (!best.has_value() || answers[0].dist < best->dist) best = answers[0];
    // Early exit once the decision is settled.
    if (best->dist <= c_radius) return best;
  }
  if (best.has_value() && best->dist <= c_radius) return best;
  return std::nullopt;
}

size_t RcNearNeighbor::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& replica : replicas_) bytes += replica->SizeBytes();
  return bytes;
}

CAnnsDriver::CAnnsDriver(Params params, util::Metric metric)
    : params_(params), metric_(metric) {
  assert(params_.c > 1.0);
  assert(params_.r_min > 0.0 && params_.r_min <= params_.r_max);
}

void CAnnsDriver::Build(const float* data, size_t n, size_t d) {
  levels_.clear();
  size_t level_idx = 0;
  for (double radius = params_.r_min; radius <= params_.r_max * (1.0 + 1e-12);
       radius *= params_.c) {
    RcNearNeighbor::Params level;
    level.radius = radius;
    level.c = params_.c;
    level.m = params_.m;
    level.repetitions = params_.repetitions;
    level.w = params_.w;
    level.seed = params_.seed + 7919 * level_idx++;
    auto rc = std::make_unique<RcNearNeighbor>(level, metric_);
    rc->Build(data, n, d);
    levels_.push_back(std::move(rc));
  }
}

std::optional<util::Neighbor> CAnnsDriver::Query(const float* query) const {
  for (const auto& level : levels_) {
    const auto hit = level->Query(query);
    if (hit.has_value()) return hit;
  }
  return std::nullopt;
}

}  // namespace core
}  // namespace lccs
