#ifndef LCCS_CORE_SNAPSHOT_H_
#define LCCS_CORE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/ann_index.h"
#include "dataset/dataset.h"
#include "storage/quantized_store.h"
#include "util/metric.h"
#include "util/topk.h"

namespace lccs {
namespace core {

/// One generation of a DynamicIndex's append-only delta region. The buffer
/// is the unit of the MVCC version chain: the writer appends new rows in
/// place while capacity lasts (readers only ever touch the prefix they
/// pinned, which the writer never rewrites), and on exhaustion it clones
/// into a larger buffer and publishes the clone — snapshots holding the old
/// shared_ptr keep reading the retired generation untouched. Rows and ids
/// are plain memory (immutable once written, ordered by the index rwlock);
/// tombstones are atomic version stamps because a concurrent Remove must be
/// visible to later snapshots while staying invisible to earlier ones.
struct DeltaBuffer {
  /// `codebook` (optional) enables the quantized scoring tier for delta
  /// rows: the writer encodes each inserted row under the epoch's codebook
  /// (QuantizedStore::EncodeRow) so snapshot delta scans can prune on int8
  /// codes exactly like epoch scans. The shared_ptr pins the epoch's
  /// QuantizedStore (codebook + scoring constants) even if the epoch itself
  /// is retired while this buffer is still pinned by a snapshot.
  DeltaBuffer(size_t capacity, size_t dim,
              std::shared_ptr<const storage::QuantizedStore> codebook =
                  nullptr);

  size_t capacity = 0;
  size_t dim = 0;
  std::unique_ptr<float[]> rows;     ///< capacity x dim, slot-major
  std::unique_ptr<int32_t[]> ids;    ///< slot -> global id, ascending
  /// Slot -> version of the mutation that removed it; 0 = live. A snapshot
  /// at version V treats a slot as deleted iff 0 < stamp <= V.
  std::unique_ptr<std::atomic<uint64_t>[]> deleted_at;
  /// Quantized mirror of `rows` (null when quantization is off): slot-major
  /// codes plus per-slot reconstruction terms, written together with the
  /// float row under the writer lock — a pinned prefix is as immutable as
  /// the floats.
  std::shared_ptr<const storage::QuantizedStore> codebook;
  std::unique_ptr<uint8_t[]> codes;  ///< capacity x dim
  std::unique_ptr<float[]> terms;    ///< capacity
};

/// One consolidation generation of a DynamicIndex: the static snapshot the
/// wrapped AnnIndex was built over, plus two tombstone layers. `deleted` is
/// the *base* bitmap — rows already dead when the epoch was installed —
/// frozen afterwards (it is the bitmap the wrapped index filters through,
/// and snapshot queries read it lock-free). Removes that land after the
/// install stamp `deleted_at` with their mutation version instead, so every
/// snapshot filters exactly the removes at or before its own version.
struct EpochState {
  dataset::Dataset data;           ///< snapshot (queries member unused)
  std::vector<int32_t> ids;        ///< row -> global id, strictly ascending
  std::vector<uint8_t> deleted;    ///< base tombstones, frozen at install
  /// Row -> version of the post-install mutation that removed it; 0 = not
  /// removed since install. Same visibility rule as DeltaBuffer::deleted_at.
  std::unique_ptr<std::atomic<uint64_t>[]> deleted_at;
  std::unique_ptr<baselines::AnnIndex> index;  ///< null when no rows
};

/// An immutable, versioned read view of a DynamicIndex — the MVCC unit the
/// serving engine executes batching windows against. Acquiring one
/// (DynamicIndex::AcquireSnapshot) is O(1): it pins the epoch shared_ptr,
/// the current delta buffer shared_ptr, the delta prefix length and the
/// tombstone version, all captured under one reader-lock hold. Queries then
/// run with **no lock held** and never block writers; concurrent inserts
/// land beyond the pinned prefix (or in a successor buffer), concurrent
/// removes carry stamps above the pinned version, and an epoch rebuild
/// installing a new generation leaves the pinned shared_ptrs alive — so
/// every query over one Snapshot returns bit-identical results for as long
/// as the snapshot is held (the property
/// tests/test_dynamic_concurrency.cc races under TSAN).
///
/// Query semantics match DynamicIndex::Query at the acquisition point
/// exactly: top-k over (epoch ∪ delta prefix) ∖ {tombstones at or before
/// version()}, merged by (distance, global id). Epoch-row removes that
/// happened after the install are filtered *post*-query: the wrapped index
/// answers k + overfetch (overfetch = stamped epoch rows at acquisition, at
/// most the tombstones one consolidation cycle accumulates), the stamped
/// rows are dropped, and the survivors truncated back to k — exact for the
/// exhaustive configurations the oracle tests replay.
class Snapshot {
 public:
  Snapshot() = default;

  /// k nearest surviving neighbors at version(), global ids.
  std::vector<util::Neighbor> Query(const float* query, size_t k) const;

  /// Batched queries, identical per row to Query by construction.
  std::vector<std::vector<util::Neighbor>> QueryBatch(
      const float* queries, size_t num_queries, size_t k,
      size_t num_threads = 0) const;

  /// Mutations (of the owning DynamicIndex) applied before acquisition.
  uint64_t version() const { return version_; }
  /// Consolidations completed before acquisition (test observability).
  uint64_t epoch_sequence() const { return epoch_sequence_; }
  /// Rows visible to this snapshot's delta scan.
  size_t delta_size() const { return delta_len_; }

 private:
  friend class DynamicIndex;

  /// Epoch results with post-install removes at or before version_ dropped
  /// and row ids remapped to global ids, truncated to k.
  std::vector<util::Neighbor> FilterEpoch(std::vector<util::Neighbor> stat,
                                          size_t k) const;
  /// Brute-force top-k over the live pinned delta prefix, global ids.
  std::vector<util::Neighbor> QueryDelta(const float* query, size_t k) const;
  /// Same, over a precomputed live-slot list — QueryBatch gathers the slots
  /// surviving at version() once and reuses them for every query in the
  /// window (the stamps cannot change retroactively for a pinned version,
  /// so the list is identical to what each per-query gather would build).
  std::vector<util::Neighbor> QueryDelta(const float* query, size_t k,
                                         const std::vector<int32_t>& live)
      const;

  std::shared_ptr<const EpochState> epoch_;
  std::shared_ptr<const DeltaBuffer> delta_;
  size_t delta_len_ = 0;       ///< pinned delta prefix (slots)
  size_t epoch_overfetch_ = 0; ///< epoch rows stamped at acquisition
  uint64_t version_ = 0;
  uint64_t epoch_sequence_ = 0;
  util::Metric metric_ = util::Metric::kEuclidean;
  size_t dim_ = 0;
};

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_SNAPSHOT_H_
