#include "core/dynamic_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#include <unistd.h>

#include <atomic>

#include "core/stream_io.h"
#include "storage/flat_file.h"
#include "storage/mmap_store.h"
#include "storage/quantized_store.h"
#include "util/simd_distance.h"
#include "util/thread_pool.h"

namespace lccs {
namespace core {

namespace {

// Version 3: a has-quantized-codebook byte (and, when set, the codebook
// itself — codes are re-encoded from the floats at load) follows the epoch
// index payload. Version 2 added the epoch-storage-kind byte after the row
// count (inline floats vs a path + checksum reference to a flat file).
constexpr char kStateMagic[8] = {'L', 'C', 'C', 'S', 'D', 'Y', 'N', '3'};
constexpr char kStreamName[] = "dynamic index stream";

// Epoch storage kinds of the state stream.
constexpr uint8_t kEpochInline = 0;    ///< floats embedded in the stream
constexpr uint8_t kEpochExternal = 1;  ///< path + checksum of a flat file

/// First delta generation's capacity. Deliberately small and independent of
/// Options::rebuild_threshold (which tests set as high as 2^30 to disable
/// consolidation): generations double, so reaching a threshold of T costs
/// O(log T) clones and O(T) copied floats total.
constexpr size_t kInitialDeltaCapacity = 64;

/// Process-wide suffix for spill files, so concurrent rebuilds of several
/// indexes sharing one spill_dir never collide.
std::atomic<uint64_t> g_spill_counter{0};

using io::ReadSizedVec;
using io::ReadVec;
using io::WritePod;
using io::WriteVec;

template <typename T>
void ReadPod(std::istream& in, T* value) {
  io::ReadPod(in, value, kStreamName);
}

// Header-derived allocations below are capped by io::RemainingBytes, so a
// corrupt header that passes the range checks (next_id up to INT32_MAX, dim
// up to 2^24 — a legal combination ~2^55 elements large) still cannot drive
// a resize beyond what the stream could possibly back, surfacing as the
// corrupt-stream runtime_error instead of bad_alloc.
using io::RemainingBytes;

}  // namespace

DynamicIndex::DynamicIndex(Factory factory, Options options)
    : factory_(std::move(factory)), options_(options) {
  assert(factory_ != nullptr);
}

DynamicIndex::~DynamicIndex() {
  // The background thread captures `this`; it must have drained before any
  // member is torn down. Errors are irrelevant during destruction.
  {
    std::unique_lock<std::mutex> lock(rebuild_mutex_);
    rebuild_cv_.wait(lock, [&] { return !rebuild_in_flight_; });
  }
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
}

std::shared_lock<std::shared_mutex> DynamicIndex::ReadLock() const {
  // Tap the gate: blocks here exactly while a writer is mid-acquisition,
  // guaranteeing that writer makes progress before more readers pile onto
  // the rwlock (glibc's reader-preferring default would otherwise let a
  // saturating query stream starve Insert/Remove/install forever).
  { std::lock_guard<std::mutex> gate(gate_); }
  return std::shared_lock<std::shared_mutex>(mutex_);
}

std::unique_lock<std::shared_mutex> DynamicIndex::WriteLock() const {
  // Holding the gate while waiting for exclusivity keeps new readers out;
  // the in-flight ones drain and the writer gets the lock. The gate is
  // released as soon as exclusivity is held (function exit), so readers
  // then queue on the rwlock itself.
  std::lock_guard<std::mutex> gate(gate_);
  return std::unique_lock<std::shared_mutex>(mutex_);
}

std::shared_ptr<EpochState> DynamicIndex::BuildEpoch(
    const Factory& factory, util::Metric metric, size_t dim,
    storage::VectorStoreRef rows, std::vector<int32_t> ids, bool quantize) {
  auto epoch = std::make_shared<EpochState>();
  epoch->data.name = "dynamic-epoch";
  epoch->data.metric = metric;
  epoch->data.data = std::move(rows);
  epoch->ids = std::move(ids);
  epoch->deleted.assign(epoch->ids.size(), 0);
  // Value-initialization zeroes the stamps: no post-install removes yet.
  epoch->deleted_at.reset(new std::atomic<uint64_t>[epoch->ids.size()]());
  (void)dim;  // consulted only by the assert
  assert(epoch->ids.empty() || epoch->data.cols() == dim);
  if (!epoch->ids.empty()) {
    epoch->index = factory();
    epoch->index->Build(epoch->data);
    epoch->index->set_deleted_filter(&epoch->deleted);
    if (quantize) {
      // After the index build on purpose: building first lets the index
      // free its scratch before the codes (1 byte/dim/row) are allocated,
      // keeping peak RSS at max(build, serve) instead of their sum.
      storage::EnsureQuantized(epoch->data.data.store(), metric);
    }
  }
  return epoch;
}

void DynamicIndex::Build(const dataset::Dataset& data) {
  // Claim the rebuild slot for the whole reset: a background consolidation
  // captured against the pre-Build state must never install over the new
  // contents (its delta_end would slice a cleared delta buffer, and its
  // epoch would resurrect retired ids).
  {
    std::unique_lock<std::mutex> lock(rebuild_mutex_);
    rebuild_cv_.wait(lock, [&] { return !rebuild_in_flight_; });
    rebuild_in_flight_ = true;
  }
  try {
    // Share the caller's store zero-copy (for a memory-mapped dataset the
    // base set is never duplicated). Copy-on-write isolation on the handle
    // means the caller's later writes land in a private clone, so the epoch
    // still behaves like an owned snapshot. A store that pins nothing (a
    // BorrowedStore wrapping a caller-managed buffer) is deep-copied
    // instead — this class promises the dataset need not outlive it.
    storage::VectorStoreRef rows = data.data;
    if (rows.get() != nullptr && !rows.get()->KeepsVectorsAlive()) {
      util::Matrix copy(rows.rows(), rows.cols());
      std::memcpy(copy.data(), rows.data(), rows.SizeBytes());
      rows = std::move(copy);
    }
    std::vector<int32_t> ids(data.n());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
    auto epoch = BuildEpoch(factory_, data.metric, data.dim(), std::move(rows),
                            std::move(ids), options_.quantize);

    auto lock = WriteLock();
    options_.metric = data.metric;
    options_.dim = data.dim();
    epoch_ = std::move(epoch);
    delta_.reset();
    delta_len_ = 0;
    live_.clear();
    live_.reserve(epoch_->ids.size());
    for (size_t row = 0; row < epoch_->ids.size(); ++row) {
      live_[epoch_->ids[row]] = Location{false, row};
    }
    next_id_ = static_cast<int32_t>(data.n());
    version_ = 0;
    epoch_removed_ = 0;
    epoch_sequence_ = 0;
  } catch (...) {
    FinishRebuild(nullptr);
    throw;
  }
  FinishRebuild(nullptr);
}

size_t DynamicIndex::dim() const {
  auto lock = ReadLock();
  return options_.dim;
}

util::Metric DynamicIndex::metric() const {
  auto lock = ReadLock();
  return options_.metric;
}

std::string DynamicIndex::name() const {
  auto lock = ReadLock();
  if (epoch_ != nullptr && epoch_->index != nullptr) {
    return "Dynamic(" + epoch_->index->name() + ")";
  }
  return "Dynamic";
}

size_t DynamicIndex::IndexSizeBytes() const {
  auto lock = ReadLock();
  size_t bytes = live_.size() * (sizeof(int32_t) + sizeof(Location));
  if (delta_ != nullptr) {
    bytes += delta_->capacity * (options_.dim * sizeof(float) +
                                 sizeof(int32_t) +
                                 sizeof(std::atomic<uint64_t>));
  }
  if (epoch_ != nullptr) {
    bytes += epoch_->data.SizeBytes() +
             epoch_->ids.size() * sizeof(int32_t) + epoch_->deleted.size() +
             epoch_->ids.size() * sizeof(std::atomic<uint64_t>);
    if (epoch_->index != nullptr) bytes += epoch_->index->IndexSizeBytes();
  }
  return bytes;
}

size_t DynamicIndex::live_count() const {
  auto lock = ReadLock();
  return live_.size();
}

size_t DynamicIndex::epoch_size() const {
  auto lock = ReadLock();
  return epoch_ != nullptr ? epoch_->ids.size() : 0;
}

size_t DynamicIndex::delta_size() const {
  auto lock = ReadLock();
  return delta_len_;
}

size_t DynamicIndex::tombstone_count() const {
  auto lock = ReadLock();
  const size_t total =
      delta_len_ + (epoch_ != nullptr ? epoch_->ids.size() : 0);
  return total - live_.size();
}

uint64_t DynamicIndex::epoch_sequence() const {
  auto lock = ReadLock();
  return epoch_sequence_;
}

uint64_t DynamicIndex::version() const {
  auto lock = ReadLock();
  return version_;
}

DynamicIndex::Stats DynamicIndex::stats() const {
  Stats out;
  {
    auto lock = ReadLock();
    out.live = live_.size();
    out.epoch_rows = epoch_ != nullptr ? epoch_->ids.size() : 0;
    out.delta_rows = delta_len_;
    out.tombstones = out.epoch_rows + out.delta_rows - out.live;
    out.epoch_stamped = epoch_removed_;
    out.epoch_sequence = epoch_sequence_;
    out.version = version_;
  }
  // The rebuild flag lives under its own mutex by design (never held while
  // acquiring mutex_); sampled after the counters, so a scheduler that sees
  // rebuild_in_flight == false knows the counters predate any later claim.
  {
    std::lock_guard<std::mutex> lock(rebuild_mutex_);
    out.rebuild_in_flight = rebuild_in_flight_;
  }
  return out;
}

bool DynamicIndex::rebuild_in_flight() const {
  std::lock_guard<std::mutex> lock(rebuild_mutex_);
  return rebuild_in_flight_;
}

bool DynamicIndex::Contains(int32_t id) const {
  auto lock = ReadLock();
  return live_.count(id) != 0;
}

util::Matrix DynamicIndex::LiveVectors(std::vector<int32_t>* ids) const {
  auto lock = ReadLock();
  return LiveVectorsLocked(ids);
}

util::Matrix DynamicIndex::LiveVectorsLocked(std::vector<int32_t>* ids) const {
  const size_t d = options_.dim;
  util::Matrix out(live_.size(), d);
  if (ids != nullptr) ids->clear();
  size_t row = 0;
  auto append = [&](int32_t id, const float* vec) {
    std::memcpy(out.Row(row), vec, d * sizeof(float));
    if (ids != nullptr) ids->push_back(id);
    ++row;
  };
  // Epoch ids all precede delta ids, and both regions are stored ascending,
  // so this sweep emits global-id order without sorting. A row is live iff
  // neither dead at install (base bitmap) nor stamped since. Const access
  // only: a non-const Row() on the shared epoch handle would trigger its
  // copy-on-write clone.
  if (epoch_ != nullptr) {
    const EpochState& ep = *epoch_;
    for (size_t r = 0; r < ep.ids.size(); ++r) {
      if (ep.deleted[r] ||
          ep.deleted_at[r].load(std::memory_order_relaxed) != 0) {
        continue;
      }
      append(ep.ids[r], ep.data.data.Row(r));
    }
  }
  for (size_t s = 0; s < delta_len_; ++s) {
    if (delta_->deleted_at[s].load(std::memory_order_relaxed) != 0) continue;
    append(delta_->ids[s], delta_->rows.get() + s * d);
  }
  assert(row == out.rows());
  return out;
}

void DynamicIndex::EnsureDeltaCapacityLocked() {
  if (delta_ != nullptr && delta_len_ < delta_->capacity) return;
  const size_t d = options_.dim;
  const size_t capacity =
      delta_ == nullptr ? kInitialDeltaCapacity
                        : std::max(kInitialDeltaCapacity, delta_->capacity * 2);
  // The generation chain keeps one codebook: a grown buffer inherits its
  // predecessor's (the codes are copied verbatim below), and the first
  // buffer adopts the epoch's quantized sibling if one exists — so delta
  // rows are always scorable under the same codebook the epoch uses.
  std::shared_ptr<const storage::QuantizedStore> codebook;
  if (delta_ != nullptr) {
    codebook = delta_->codebook;
  } else if (options_.quantize && epoch_ != nullptr &&
             epoch_->data.data.store() != nullptr) {
    codebook = epoch_->data.data.store()->QuantizedShared();
  }
  auto grown = std::make_shared<DeltaBuffer>(capacity, d, std::move(codebook));
  if (delta_len_ > 0) {
    // Clone the used prefix; snapshots pinning the old generation keep
    // reading it untouched. Stamps transfer verbatim — they are versions,
    // not flags, so visibility at any pinned version is preserved.
    std::memcpy(grown->rows.get(), delta_->rows.get(),
                delta_len_ * d * sizeof(float));
    std::memcpy(grown->ids.get(), delta_->ids.get(),
                delta_len_ * sizeof(int32_t));
    for (size_t s = 0; s < delta_len_; ++s) {
      grown->deleted_at[s].store(
          delta_->deleted_at[s].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    if (grown->codebook != nullptr) {
      std::memcpy(grown->codes.get(), delta_->codes.get(), delta_len_ * d);
      std::memcpy(grown->terms.get(), delta_->terms.get(),
                  delta_len_ * sizeof(float));
    }
  }
  delta_ = std::move(grown);
}

int32_t DynamicIndex::Insert(const float* vec) {
  bool schedule = false;
  int32_t id = 0;
  {
    auto lock = WriteLock();
    if (options_.dim == 0) {
      throw std::runtime_error(
          "DynamicIndex: set Options::dim or Build before Insert");
    }
    EnsureDeltaCapacityLocked();
    id = next_id_++;
    const size_t slot = delta_len_;
    // Slots at or past every pinned prefix length: concurrent snapshot
    // readers never touch this memory, so the plain writes are race-free.
    std::memcpy(delta_->rows.get() + slot * options_.dim, vec,
                options_.dim * sizeof(float));
    if (delta_->codebook != nullptr) {
      delta_->codebook->EncodeRow(vec,
                                  delta_->codes.get() + slot * options_.dim,
                                  &delta_->terms[slot]);
    }
    delta_->ids[slot] = id;
    ++delta_len_;
    ++version_;
    live_[id] = Location{true, slot};
    schedule = options_.background_rebuild &&
               delta_len_ >= options_.rebuild_threshold;
  }
  if (schedule && ClaimRebuild()) LaunchRebuild();
  return id;
}

void DynamicIndex::set_deleted_filter(const std::vector<uint8_t>* deleted) {
  if (deleted != nullptr) {
    throw std::runtime_error(
        "DynamicIndex manages its own tombstones; use Remove() instead of "
        "set_deleted_filter()");
  }
}

bool DynamicIndex::Remove(int32_t id) {
  bool schedule = false;
  {
    auto lock = WriteLock();
    const auto it = live_.find(id);
    if (it == live_.end()) return false;
    const Location loc = it->second;
    ++version_;
    // Stamp, don't flip a bit: snapshots pinned at earlier versions keep
    // seeing the row, snapshots at or after version_ filter it. The store
    // is atomic because pinned snapshots read stamps with no lock held.
    if (loc.in_delta) {
      delta_->deleted_at[loc.pos].store(version_, std::memory_order_relaxed);
    } else {
      epoch_->deleted_at[loc.pos].store(version_, std::memory_order_relaxed);
      ++epoch_removed_;
    }
    live_.erase(it);
    // Epoch stamps widen every snapshot's over-fetch margin until the next
    // consolidation sweeps them into the base set; bound that cost the same
    // way delta growth is bounded.
    schedule = options_.background_rebuild &&
               epoch_removed_ >= options_.rebuild_threshold;
  }
  if (schedule && ClaimRebuild()) LaunchRebuild();
  return true;
}

Snapshot DynamicIndex::AcquireSnapshotLocked() const {
  Snapshot snap;
  snap.epoch_ = epoch_;
  snap.delta_ = delta_;
  snap.delta_len_ = delta_len_;
  // Every stamp at or below version_ is on an epoch row already counted in
  // epoch_removed_, so over-fetching by it guarantees k survivors.
  snap.epoch_overfetch_ = epoch_removed_;
  snap.version_ = version_;
  snap.epoch_sequence_ = epoch_sequence_;
  snap.metric_ = options_.metric;
  snap.dim_ = options_.dim;
  return snap;
}

Snapshot DynamicIndex::AcquireSnapshot() const {
  auto lock = ReadLock();
  return AcquireSnapshotLocked();
}

std::vector<util::Neighbor> DynamicIndex::Query(const float* query,
                                                size_t k) const {
  // One-shot snapshot: same linearization point as the old
  // hold-the-reader-lock query, with the lock held only for the capture.
  return AcquireSnapshot().Query(query, k);
}

std::vector<std::vector<util::Neighbor>> DynamicIndex::QueryBatch(
    const float* queries, size_t num_queries, size_t k,
    size_t num_threads) const {
  return AcquireSnapshot().QueryBatch(queries, num_queries, k, num_threads);
}

bool DynamicIndex::ClaimRebuild() {
  std::lock_guard<std::mutex> lock(rebuild_mutex_);
  if (rebuild_in_flight_) return false;
  rebuild_in_flight_ = true;
  return true;
}

void DynamicIndex::LaunchRebuild() {
  // A dedicated thread, NOT ThreadPool::Submit: RunRebuild blocks on mutex_
  // (shared at capture, exclusive at install), and Submit tasks may be
  // stolen by any thread helping to drain a ParallelRange — including a
  // QueryBatch caller already holding mutex_ in shared mode, which would
  // then recursively re-acquire the shared lock and self-deadlock waiting
  // for exclusivity.
  std::lock_guard<std::mutex> lock(rebuild_mutex_);
  // The previous rebuild thread, if any, has already run FinishRebuild (the
  // caller won ClaimRebuild, so rebuild_in_flight_ was observed false) and
  // is at most a few instructions from exiting; joining it here reclaims
  // the handle without waiting on real work.
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
  // Assigning under rebuild_mutex_ closes a startup race: the new thread
  // cannot complete FinishRebuild (which needs this mutex) until the handle
  // is installed, so the next claimant's join above always sees it.
  try {
    rebuild_thread_ = std::thread([this] { RunRebuild(); });
  } catch (...) {
    // Thread creation failed (resource exhaustion). Release the claim
    // inline — FinishRebuild would re-lock rebuild_mutex_ — or it would
    // stay set forever, wedging Consolidate and the destructor. The caller
    // mutation already succeeded, so park the error like any other
    // background-rebuild failure; WaitForRebuild surfaces it.
    rebuild_in_flight_ = false;
    rebuild_error_ = std::current_exception();
    rebuild_cv_.notify_all();
  }
}

void DynamicIndex::FinishRebuild(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(rebuild_mutex_);
  rebuild_in_flight_ = false;
  if (error) rebuild_error_ = error;
  // Notify *while holding the mutex*: the destructor destroys this
  // condition variable the moment its predicate-protected wait returns,
  // which the mutex forbids until this broadcast has completed — notifying
  // after unlock would let the pool thread broadcast into freed memory.
  rebuild_cv_.notify_all();
}

void DynamicIndex::RunRebuild() {
  try {
    // Capture under the reader lock: the epoch shared_ptr, the delta buffer
    // shared_ptr, the used prefix length, and the *merged* tombstone flags
    // of both regions as of now — never the floats themselves. Both stores
    // are immutable over the captured range (rows are written before the
    // releasing writer unlock that happens-before this reader lock) and
    // kept alive by the shared_ptrs, so the heavy survivor materialization
    // below runs with no lock held; for a memory-mapped epoch this is the
    // difference between consolidation costing O(delta) heap and costing
    // the whole base set. Writers wait only for the O(rows) flag merges.
    std::shared_ptr<const EpochState> old_epoch;
    std::shared_ptr<const DeltaBuffer> old_delta;
    std::vector<uint8_t> epoch_dead;
    std::vector<uint8_t> delta_dead;
    size_t delta_end = 0;
    const size_t d = options_.dim;
    {
      auto lock = ReadLock();
      old_epoch = epoch_;
      if (old_epoch != nullptr) {
        epoch_dead.resize(old_epoch->ids.size());
        for (size_t r = 0; r < epoch_dead.size(); ++r) {
          epoch_dead[r] =
              old_epoch->deleted[r] ||
              old_epoch->deleted_at[r].load(std::memory_order_relaxed) != 0;
        }
      }
      old_delta = delta_;
      delta_end = delta_len_;
      delta_dead.resize(delta_end);
      for (size_t s = 0; s < delta_end; ++s) {
        delta_dead[s] =
            old_delta->deleted_at[s].load(std::memory_order_relaxed) != 0;
      }
    }

    // Survivors, in ascending global-id order (epoch ids all precede delta
    // ids; both regions are stored ascending).
    std::vector<int32_t> ids;
    storage::VectorStoreRef rows;
    const EpochState* ep = old_epoch.get();
    const size_t epoch_rows = ep != nullptr ? ep->ids.size() : 0;
    size_t live = 0;
    for (size_t r = 0; r < epoch_rows; ++r) live += epoch_dead[r] ? 0 : 1;
    for (size_t s = 0; s < delta_end; ++s) live += delta_dead[s] ? 0 : 1;
    ids.reserve(live);
    // One survivor sweep for both sinks below, so the spill and heap
    // epochs can never diverge in ordering or tombstone handling (the
    // equivalence the spill-vs-heap test protects). ScanRows, not a bare
    // loop: the old epoch may itself be a budgeted mmap store, and this
    // full sweep is exactly the scan the residency clock (and read-ahead)
    // must see.
    const auto sweep_survivors = [&](auto&& sink) {
      if (epoch_rows > 0) {
        storage::ScanRows(*ep->data.data.get(), 0, epoch_rows, [&](size_t r) {
          if (!epoch_dead[r]) sink(ep->ids[r], ep->data.data.Row(r));
        });
      }
      for (size_t s = 0; s < delta_end; ++s) {
        if (!delta_dead[s]) {
          sink(old_delta->ids[s], old_delta->rows.get() + s * d);
        }
      }
    };
    if (!options_.spill_dir.empty()) {
      // Spill: stream survivors into a flat file (O(row) memory) and map it
      // back. The MmapStore unlinks the file when the epoch is released, so
      // retired generations clean up after themselves. No checksum pass on
      // open — this process just wrote the bytes.
      // PID + per-process counter: several processes may share one
      // spill_dir, and a name collision would truncate a flat file another
      // process is actively serving from.
      const std::string path =
          options_.spill_dir + "/lccs-epoch-" + std::to_string(::getpid()) +
          "-" + std::to_string(g_spill_counter.fetch_add(1)) + ".flat";
      storage::FlatFileWriter writer(path, d);
      sweep_survivors([&](int32_t id, const float* vec) {
        writer.AppendRow(vec);
        ids.push_back(id);
      });
      writer.Finish();
      storage::MmapStore::Options open_options;
      open_options.verify_checksum = false;
      open_options.unlink_on_close = true;
      try {
        rows = storage::MmapStore::Open(path, open_options);
      } catch (...) {
        // unlink_on_close only guards the file once a store owns it; a
        // failed Open (fd exhaustion, ENOMEM) must not leave an orphaned
        // epoch-sized file behind on a long-running server.
        std::remove(path.c_str());
        throw;
      }
    } else {
      util::Matrix heap_rows(live, d);
      size_t row = 0;
      sweep_survivors([&](int32_t id, const float* vec) {
        std::memcpy(heap_rows.Row(row++), vec, d * sizeof(float));
        ids.push_back(id);
      });
      rows = std::move(heap_rows);
    }
    // Build: the expensive part — hashing + CSA construction — runs with no
    // lock held, from the immutable capture. Old epoch keeps serving, and
    // snapshots acquired before the install below stay pinned to it.
    auto epoch = BuildEpoch(factory_, options_.metric, options_.dim,
                            std::move(rows), std::move(ids),
                            options_.quantize);

    // Install: reconcile mutations that raced the build, then swap.
    {
      auto lock = WriteLock();
      // Deletions since capture land in the fresh *base* bitmap (the rows
      // are baked into the new static structure, and no snapshot older
      // than this install can ever see the new epoch, so collapsing their
      // stamps to base tombstones loses nothing); the id is gone from
      // live_ already.
      for (size_t row = 0; row < epoch->ids.size(); ++row) {
        const auto it = live_.find(epoch->ids[row]);
        if (it == live_.end()) {
          epoch->deleted[row] = 1;
        } else {
          it->second = Location{false, row};
        }
      }
      // BuildEpoch installed the filter before the reconciliation above
      // flipped bits; re-install so the index's cached tombstone count (its
      // per-query over-fetch) reflects the final base bitmap. The epoch is
      // not yet published, so no query can observe the transition.
      if (epoch->index != nullptr) {
        epoch->index->set_deleted_filter(&epoch->deleted);
      }
      // Inserts since capture become the new delta generation. Copy from
      // the *current* buffer (a doubling may have superseded the captured
      // one), stamps verbatim — every stamp is at most version_, hence
      // visible-as-dead to all future snapshots, matching the collapsed
      // epoch handling above.
      const size_t leftover = delta_len_ - delta_end;
      if (leftover == 0) {
        delta_.reset();
        delta_len_ = 0;
      } else {
        // The fresh generation adopts the *new* epoch's codebook (min/max
        // ranges moved with the consolidated points), so leftover rows are
        // re-encoded rather than copied — the old codes were under the old
        // codebook.
        std::shared_ptr<const storage::QuantizedStore> codebook;
        if (options_.quantize && epoch->data.data.store() != nullptr) {
          codebook = epoch->data.data.store()->QuantizedShared();
        }
        auto fresh = std::make_shared<DeltaBuffer>(
            std::max(kInitialDeltaCapacity, 2 * leftover), d,
            std::move(codebook));
        for (size_t s = 0; s < leftover; ++s) {
          const size_t src = delta_end + s;
          std::memcpy(fresh->rows.get() + s * d, delta_->rows.get() + src * d,
                      d * sizeof(float));
          if (fresh->codebook != nullptr) {
            fresh->codebook->EncodeRow(fresh->rows.get() + s * d,
                                       fresh->codes.get() + s * d,
                                       &fresh->terms[s]);
          }
          fresh->ids[s] = delta_->ids[src];
          fresh->deleted_at[s].store(
              delta_->deleted_at[src].load(std::memory_order_relaxed),
              std::memory_order_relaxed);
          const auto it = live_.find(fresh->ids[s]);
          if (it != live_.end()) it->second = Location{true, s};
        }
        delta_ = std::move(fresh);
        delta_len_ = leftover;
      }
      epoch_ = std::move(epoch);
      epoch_removed_ = 0;
      ++epoch_sequence_;
    }
    FinishRebuild(nullptr);
  } catch (...) {
    // An exception escaping the background thread would std::terminate;
    // park the error for WaitForRebuild instead.
    FinishRebuild(std::current_exception());
  }
}

bool DynamicIndex::TriggerRebuild() {
  {
    auto lock = ReadLock();
    if (live_.empty() && delta_len_ == 0 &&
        (epoch_ == nullptr || epoch_->ids.empty())) {
      return false;
    }
  }
  if (!ClaimRebuild()) return false;
  LaunchRebuild();
  return true;
}

void DynamicIndex::Consolidate() {
  // Always run a rebuild of our own rather than adopting one already in
  // flight: an in-flight rebuild captured its survivors before this call,
  // so mutations between its capture and now would stay unconsolidated.
  // Claiming after the wait can race another claimant — just retry.
  while (!ClaimRebuild()) {
    WaitForRebuild();
  }
  RunRebuild();
  WaitForRebuild();
}

void DynamicIndex::WaitForRebuild() const {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(rebuild_mutex_);
    rebuild_cv_.wait(lock, [&] { return !rebuild_in_flight_; });
    std::swap(error, rebuild_error_);
  }
  if (error) std::rethrow_exception(error);
}

void DynamicIndex::SerializeState(std::ostream& out, const EpochWriter& writer,
                                  bool external_vectors) const {
  auto lock = ReadLock();
  out.write(kStateMagic, sizeof(kStateMagic));
  WritePod(out, static_cast<uint32_t>(options_.metric));
  WritePod(out, static_cast<uint64_t>(options_.dim));
  WritePod(out, static_cast<int64_t>(next_id_));
  WritePod(out, epoch_sequence_);

  const uint64_t epoch_rows = epoch_ != nullptr ? epoch_->ids.size() : 0;
  WritePod(out, epoch_rows);
  if (epoch_rows > 0) {
    if (external_vectors) {
      // Out-of-line mode: record where the epoch floats live instead of
      // inlining half a gigabyte of them — path, checksum (revalidated at
      // load against the file's own header) and this epoch's first row
      // inside the file (a sharded or sliced epoch need not start at 0).
      size_t row_offset = 0;
      const storage::MmapStore* backing =
          epoch_->data.data.store()->BackingMmap(&row_offset);
      if (backing == nullptr) {
        throw std::invalid_argument(
            "SerializeState: external_vectors requires an mmap-backed "
            "epoch (got " + epoch_->data.data.store()->DebugName() + ")");
      }
      if (backing->unlink_on_close()) {
        // A spill epoch's flat file is unlinked the moment the epoch is
        // replaced or the index destroyed — recording its path would
        // produce a save that silently stops loading. Fail now instead.
        throw std::invalid_argument(
            "SerializeState: external_vectors cannot reference the "
            "self-deleting spill file " + backing->path() +
            "; consolidate to a persistent flat file or save inline");
      }
      WritePod(out, kEpochExternal);
      const std::string& path = backing->path();
      WritePod(out, static_cast<uint64_t>(path.size()));
      out.write(path.data(), static_cast<std::streamsize>(path.size()));
      WritePod(out, backing->checksum());
      WritePod(out, static_cast<uint64_t>(row_offset));
    } else {
      WritePod(out, kEpochInline);
      out.write(reinterpret_cast<const char*>(epoch_->data.data.data()),
                epoch_rows * options_.dim * sizeof(float));
    }
    out.write(reinterpret_cast<const char*>(epoch_->ids.data()),
              epoch_rows * sizeof(int32_t));
    // Version stamps collapse into the base bitmap: the stream format is a
    // point-in-time save, and every stamp at save time is at or below the
    // version any post-load snapshot will carry.
    std::vector<uint8_t> epoch_dead(epoch_rows);
    for (size_t r = 0; r < epoch_rows; ++r) {
      epoch_dead[r] =
          epoch_->deleted[r] ||
          epoch_->deleted_at[r].load(std::memory_order_relaxed) != 0;
    }
    out.write(reinterpret_cast<const char*>(epoch_dead.data()), epoch_rows);
    const uint8_t has_index = epoch_->index != nullptr ? 1 : 0;
    WritePod(out, has_index);
    if (has_index) writer(out, *epoch_->index);
    // Quantized tier: only the codebook is persisted — codes are a pure
    // function of (floats, codebook) and re-encode deterministically at
    // load, so the save stays small and a corrupt-code class of failures
    // cannot exist. QuantizedShared (not ActiveQuantized) on purpose: the
    // attachment is state; the LCCS_QUANTIZED escape hatch is serving
    // policy and must not silently strip saves.
    std::shared_ptr<const storage::QuantizedStore> quantized =
        epoch_->data.data.store() != nullptr
            ? epoch_->data.data.store()->QuantizedShared()
            : nullptr;
    const uint8_t has_quantized = quantized != nullptr ? 1 : 0;
    WritePod(out, has_quantized);
    if (has_quantized) quantized->SerializeCodebook(out);
  }

  // Delta region, same flattened layout as the vectors it replaced.
  std::vector<float> delta_rows(delta_len_ * options_.dim);
  std::vector<int32_t> delta_ids(delta_len_);
  std::vector<uint8_t> delta_dead(delta_len_);
  if (delta_len_ > 0) {
    std::memcpy(delta_rows.data(), delta_->rows.get(),
                delta_rows.size() * sizeof(float));
    std::memcpy(delta_ids.data(), delta_->ids.get(),
                delta_len_ * sizeof(int32_t));
    for (size_t s = 0; s < delta_len_; ++s) {
      delta_dead[s] =
          delta_->deleted_at[s].load(std::memory_order_relaxed) != 0;
    }
  }
  WriteVec(out, delta_rows);
  WriteVec(out, delta_ids);
  WriteVec(out, delta_dead);
  if (!out) throw std::runtime_error("dynamic index write error");
}

std::unique_ptr<DynamicIndex> DynamicIndex::DeserializeState(
    std::istream& in, Factory factory, Options options,
    const EpochReader& reader) {
  char magic[sizeof(kStateMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(magic), kStateMagic)) {
    throw std::runtime_error("not an LCCS dynamic index stream");
  }
  uint32_t metric = 0;
  uint64_t dim = 0, epoch_sequence = 0;
  int64_t next_id = 0;
  ReadPod(in, &metric);
  ReadPod(in, &dim);
  ReadPod(in, &next_id);
  ReadPod(in, &epoch_sequence);
  if (dim == 0 || dim > (uint64_t{1} << 24) || next_id < 0 ||
      next_id > std::numeric_limits<int32_t>::max() ||
      metric > static_cast<uint32_t>(util::Metric::kJaccard)) {
    throw std::runtime_error("dynamic index stream corrupt: bad header");
  }
  options.metric = static_cast<util::Metric>(metric);
  options.dim = dim;

  auto index =
      std::make_unique<DynamicIndex>(std::move(factory), options);
  index->next_id_ = static_cast<int32_t>(next_id);
  index->epoch_sequence_ = epoch_sequence;

  uint64_t epoch_rows = 0;
  ReadPod(in, &epoch_rows);
  if (epoch_rows > static_cast<uint64_t>(next_id)) {
    throw std::runtime_error(
        "dynamic index stream corrupt: epoch larger than id space");
  }
  auto epoch = std::make_shared<EpochState>();
  epoch->data.name = "dynamic-epoch";
  epoch->data.metric = options.metric;
  if (epoch_rows > 0) {
    uint8_t storage_kind = 0;
    ReadPod(in, &storage_kind);
    if (storage_kind != kEpochInline && storage_kind != kEpochExternal) {
      throw std::runtime_error(
          "dynamic index stream corrupt: unknown epoch storage kind");
    }
    // dim <= 2^24 and epoch_rows <= 2^31, so these products cannot
    // overflow. The inline kind must additionally back its floats.
    const uint64_t epoch_bytes =
        epoch_rows * (sizeof(int32_t) + 1) +
        (storage_kind == kEpochInline ? epoch_rows * dim * sizeof(float) : 0);
    if (epoch_bytes > RemainingBytes(in)) {
      throw std::runtime_error(
          "dynamic index stream corrupt: epoch larger than stream");
    }
    if (storage_kind == kEpochExternal) {
      // Out-of-line epoch: re-map the recorded flat file and hold the
      // stream to its promises — the file must still match the checksum
      // recorded at save time, and the recorded row range must exist.
      uint64_t path_len = 0, checksum = 0, row_offset = 0;
      ReadPod(in, &path_len);
      if (path_len == 0 || path_len > 4096 ||
          path_len > RemainingBytes(in)) {
        throw std::runtime_error(
            "dynamic index stream corrupt: bad epoch file path length");
      }
      std::string path(path_len, '\0');
      in.read(path.data(), static_cast<std::streamsize>(path_len));
      ReadPod(in, &checksum);
      ReadPod(in, &row_offset);
      if (!in) throw std::runtime_error("truncated dynamic index stream");
      auto store = storage::MmapStore::Open(path);  // validates its header
      if (store->checksum() != checksum) {
        throw std::runtime_error(
            "dynamic index epoch file checksum mismatch (file replaced "
            "since save?): " + path);
      }
      if (store->cols() != dim || row_offset > store->rows() ||
          epoch_rows > store->rows() - row_offset) {
        throw std::runtime_error(
            "dynamic index stream corrupt: epoch rows not contained in " +
            path);
      }
      if (row_offset == 0 && epoch_rows == store->rows()) {
        epoch->data.data = storage::VectorStoreRef(store);
      } else {
        epoch->data.data =
            storage::VectorStoreRef(std::make_shared<storage::SliceStore>(
                store, static_cast<size_t>(row_offset),
                static_cast<size_t>(epoch_rows)));
      }
    }
    try {
      if (storage_kind == kEpochInline) {
        epoch->data.data.Resize(epoch_rows, dim);
      }
      epoch->ids.resize(epoch_rows);
      epoch->deleted.resize(epoch_rows);
    } catch (const std::bad_alloc&) {
      // Reachable only on non-seekable streams (no byte budget): translate
      // the allocator's verdict into the promised corrupt-stream error.
      throw std::runtime_error(
          "dynamic index stream corrupt: epoch allocation failed");
    }
    if (storage_kind == kEpochInline) {
      in.read(reinterpret_cast<char*>(epoch->data.data.MutableData()),
              epoch_rows * dim * sizeof(float));
    }
    in.read(reinterpret_cast<char*>(epoch->ids.data()),
            epoch_rows * sizeof(int32_t));
    in.read(reinterpret_cast<char*>(epoch->deleted.data()), epoch_rows);
    if (!in) throw std::runtime_error("truncated dynamic index stream");
    uint8_t has_index = 0;
    ReadPod(in, &has_index);
    if (!has_index) {
      // SerializeState always persists an index alongside a non-empty
      // snapshot; its absence means the flag byte was tampered with, and
      // loading anyway would silently serve delta-only results.
      throw std::runtime_error(
          "dynamic index stream corrupt: snapshot without an epoch index");
    }
    epoch->index = reader(in, epoch->data);
    epoch->index->set_deleted_filter(&epoch->deleted);
    uint8_t has_quantized = 0;
    ReadPod(in, &has_quantized);
    if (has_quantized > 1) {
      throw std::runtime_error(
          "dynamic index stream corrupt: bad quantized flag");
    }
    if (has_quantized) {
      // Validates magic/cols/checksum before allocating, then re-encodes
      // the codes from the restored floats — deterministic, so the tier
      // serves identically to the one that was saved.
      storage::QuantizedStore::Codebook codebook =
          storage::QuantizedStore::DeserializeCodebook(in, dim);
      auto store = epoch->data.data.store();
      store->AttachQuantized(std::make_shared<const storage::QuantizedStore>(
          *store, options.metric, std::move(codebook)));
      index->options_.quantize = true;
    }
  }
  // Saved epoch tombstones are all base tombstones (stamps collapse at save
  // time); no row is stamped post-install yet.
  epoch->deleted_at.reset(new std::atomic<uint64_t>[epoch_rows]());
  index->epoch_ = std::move(epoch);

  const uint64_t max_points = static_cast<uint64_t>(next_id);
  const uint64_t delta_budget = RemainingBytes(in);
  std::vector<float> delta_rows;
  std::vector<int32_t> delta_ids;
  std::vector<uint8_t> delta_dead;
  try {
    ReadSizedVec(in, &delta_rows,
                 std::min(max_points * dim, delta_budget / sizeof(float)),
                 kStreamName);
    ReadSizedVec(in, &delta_ids,
                 std::min(max_points, delta_budget / sizeof(int32_t)),
                 kStreamName);
    ReadSizedVec(in, &delta_dead, std::min(max_points, delta_budget),
                 kStreamName);
  } catch (const std::bad_alloc&) {
    throw std::runtime_error(
        "dynamic index stream corrupt: delta allocation failed");
  }
  if (delta_rows.size() != delta_ids.size() * dim ||
      delta_dead.size() != delta_ids.size()) {
    throw std::runtime_error(
        "dynamic index stream corrupt: delta arrays disagree");
  }

  // The id invariant everything else relies on — epoch ids strictly
  // ascending, then delta ids strictly ascending above them, all inside
  // [0, next_id) — must hold before live_ is built from these arrays:
  // duplicates or wild values would make live_.size() disagree with the
  // tombstone-derived row counts and corrupt LiveVectors/consolidation.
  int32_t prev = -1;
  for (const int32_t id : index->epoch_->ids) {
    if (id <= prev || static_cast<int64_t>(id) >= next_id) {
      throw std::runtime_error(
          "dynamic index stream corrupt: epoch ids out of order");
    }
    prev = id;
  }
  for (const int32_t id : delta_ids) {
    if (id <= prev || static_cast<int64_t>(id) >= next_id) {
      throw std::runtime_error(
          "dynamic index stream corrupt: delta ids out of order");
    }
    prev = id;
  }

  // Materialize the delta generation. Loaded tombstones get stamp 1 and the
  // clock restarts at 1: stamp 0 means live, and every stamp must sit at or
  // below the version of any snapshot acquired after the load.
  index->delta_len_ = delta_ids.size();
  index->version_ = 1;
  if (index->delta_len_ > 0) {
    // A restored quantized epoch lends its codebook to the delta, exactly
    // as EnsureDeltaCapacityLocked would; loaded rows re-encode below.
    std::shared_ptr<const storage::QuantizedStore> codebook;
    if (index->options_.quantize &&
        index->epoch_->data.data.store() != nullptr) {
      codebook = index->epoch_->data.data.store()->QuantizedShared();
    }
    auto delta = std::make_shared<DeltaBuffer>(
        std::max(kInitialDeltaCapacity, 2 * index->delta_len_), dim,
        std::move(codebook));
    std::memcpy(delta->rows.get(), delta_rows.data(),
                delta_rows.size() * sizeof(float));
    std::memcpy(delta->ids.get(), delta_ids.data(),
                delta_ids.size() * sizeof(int32_t));
    if (delta->codebook != nullptr) {
      for (size_t s = 0; s < delta_ids.size(); ++s) {
        delta->codebook->EncodeRow(delta->rows.get() + s * dim,
                                   delta->codes.get() + s * dim,
                                   &delta->terms[s]);
      }
    }
    for (size_t s = 0; s < delta_dead.size(); ++s) {
      if (delta_dead[s]) {
        delta->deleted_at[s].store(1, std::memory_order_relaxed);
      }
    }
    index->delta_ = std::move(delta);
  }

  // Rebuild the id -> location map from the persisted tombstones.
  for (size_t row = 0; row < index->epoch_->ids.size(); ++row) {
    if (!index->epoch_->deleted[row]) {
      index->live_[index->epoch_->ids[row]] = Location{false, row};
    }
  }
  for (size_t slot = 0; slot < delta_ids.size(); ++slot) {
    if (!delta_dead[slot]) {
      index->live_[delta_ids[slot]] = Location{true, slot};
    }
  }
  return index;
}

}  // namespace core
}  // namespace lccs
