#include "core/theory.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "core/lccs.h"
#include "util/random.h"

namespace lccs {
namespace core {
namespace theory {

double Rho(double p1, double p2) {
  assert(p1 > p2 && p2 > 0.0 && p1 < 1.0);
  return std::log(1.0 / p1) / std::log(1.0 / p2);
}

double ExtremeValueCdf(double x, double p) {
  assert(p > 0.0 && p < 1.0);
  return std::exp(-std::pow(p, x));
}

double LccsCdfModel(double x, size_t m, double p) {
  // Classical longest-run extreme-value form: Pr[|LCCS| <= x] ≈
  // exp(-m (1-p) p^{x+1}) = F̂_p(x + 1 - log_{1/p}(m(1-p))). The paper's
  // Lemma 5.2 omits the "+1" (a run longer than x must extend past x+1
  // symbols from its start); the constant shift cancels in every quantile
  // *difference* used by Theorem 5.1, and this form matches Monte-Carlo
  // simulation of circular strings to within ~0.03 absolute error already at
  // m = 64 (see test_theory.cc).
  const double shift =
      std::log(static_cast<double>(m) * (1.0 - p)) / std::log(1.0 / p);
  return ExtremeValueCdf(x + 1.0 - shift, p);
}

double MedianLccsLength(size_t m, double p) {
  // Eq. (6) under the same "+1" convention as LccsCdfModel:
  // log_p(ln 2) + log_{1/p}(m (1 - p)) - 1.
  const double log_p = std::log(p);
  return std::log(std::log(2.0)) / log_p +
         std::log(static_cast<double>(m) * (1.0 - p)) / -log_p - 1.0;
}

double QuantileLccsLength(size_t m, double p, double tail_fraction) {
  assert(tail_fraction > 0.0 && tail_fraction < 1.0);
  // Eq. (7) with k/n = tail_fraction, same convention as above.
  const double log_p = std::log(p);
  return std::log(-std::log(1.0 - tail_fraction)) / log_p +
         std::log(static_cast<double>(m) * (1.0 - p)) / -log_p - 1.0;
}

size_t LambdaForGuarantee(size_t n, size_t m, double p1, double p2) {
  const double rho = Rho(p1, p2);
  const double lambda = std::pow(static_cast<double>(m), 1.0 - 1.0 / rho) *
                        static_cast<double>(n) *
                        std::pow(1.0 - p1, -1.0 / rho) * (1.0 - p2) *
                        std::pow(std::log(2.0), 1.0 / rho) / p2;
  if (!std::isfinite(lambda) || lambda < 1.0) return 1;
  return static_cast<size_t>(
      std::min(lambda, static_cast<double>(n)));
}

size_t MForAlpha(double alpha, size_t n, double rho) {
  assert(alpha >= 0.0);
  const double m = std::pow(static_cast<double>(n), alpha * rho);
  if (!std::isfinite(m) || m < 1.0) return 1;
  return static_cast<size_t>(m);
}

double EstimateLccsCdf(int32_t x, size_t m, double p, size_t trials,
                       uint64_t seed) {
  assert(m >= 1 && trials >= 1);
  util::Rng rng(seed);
  std::vector<HashValue> t(m), q(m);
  size_t at_most = 0;
  for (size_t trial = 0; trial < trials; ++trial) {
    for (size_t i = 0; i < m; ++i) {
      q[i] = static_cast<HashValue>(i);
      // Symbol matches with probability p; mismatches use a symbol outside
      // the query alphabet so they never accidentally match.
      t[i] = rng.UniformDouble() < p
                 ? q[i]
                 : static_cast<HashValue>(i + m + 1 + (trial % 7));
    }
    if (LccsLength(t.data(), q.data(), m) <= x) ++at_most;
  }
  return static_cast<double>(at_most) / static_cast<double>(trials);
}

}  // namespace theory
}  // namespace core
}  // namespace lccs
