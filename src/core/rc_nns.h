#ifndef LCCS_CORE_RC_NNS_H_
#define LCCS_CORE_RC_NNS_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/lccs_lsh.h"
#include "lsh/family_factory.h"

namespace lccs {
namespace core {

/// The decision problem the theory is stated for: (R, c)-Near Neighbor
/// Search (Definition 2.2), answered with Theorem 5.1's guarantee.
///
/// One replica = an LCCS-LSH index whose λ is set by Theorem 5.1 from the
/// family's collision probabilities p1 = p(R) and p2 = p(cR), giving success
/// probability >= 1/4; `repetitions` independent replicas boost it to
/// 1 - (3/4)^t. Query semantics match the definition:
///   * some point within R  -> returns a point within cR (w.h.p.);
///   * nothing within cR    -> returns nullopt;
///   * otherwise            -> either outcome is acceptable.
class RcNearNeighbor {
 public:
  struct Params {
    double radius = 1.0;    ///< R
    double c = 2.0;         ///< approximation ratio (> 1)
    size_t m = 64;          ///< hash string length per replica
    size_t repetitions = 4; ///< independent replicas (success 1 - (3/4)^t)
    double w = 4.0;         ///< bucket width (random projection only)
    std::optional<lsh::FamilyKind> family;  ///< default: metric's family
    uint64_t seed = 31;
  };

  RcNearNeighbor(Params params, util::Metric metric);

  /// Builds all replicas over n row-major d-dimensional vectors (referenced,
  /// not copied).
  void Build(const float* data, size_t n, size_t d);

  /// Decision query (see class comment).
  std::optional<util::Neighbor> Query(const float* query) const;

  /// λ chosen by Theorem 5.1 for this configuration (after Build).
  size_t lambda() const { return lambda_; }
  double p1() const { return p1_; }
  double p2() const { return p2_; }
  size_t SizeBytes() const;

 private:
  Params params_;
  util::Metric metric_;
  double p1_ = 0.0;
  double p2_ = 0.0;
  size_t lambda_ = 1;
  std::vector<std::unique_ptr<LccsLsh>> replicas_;
};

/// c-ANNS via the standard reduction (Section 2.1): a geometric series of
/// (R, c)-NNS structures with R in {r_min, c·r_min, c²·r_min, ...} up to
/// r_max; a query walks the series from the smallest radius and returns the
/// first hit, which is then within c·R <= c²·(true NN distance) — i.e. the
/// reduction answers c²-ANNS, at a log_c(r_max/r_min) space/time factor.
class CAnnsDriver {
 public:
  struct Params {
    double r_min = 1.0;
    double r_max = 16.0;
    double c = 2.0;
    size_t m = 64;
    size_t repetitions = 4;
    double w = 4.0;
    uint64_t seed = 37;
  };

  CAnnsDriver(Params params, util::Metric metric);

  void Build(const float* data, size_t n, size_t d);

  /// Returns the first level's hit (nullopt if every level misses — the
  /// query is farther than ~r_max from everything).
  std::optional<util::Neighbor> Query(const float* query) const;

  size_t num_levels() const { return levels_.size(); }
  const RcNearNeighbor& level(size_t i) const { return *levels_[i]; }

 private:
  Params params_;
  util::Metric metric_;
  std::vector<std::unique_ptr<RcNearNeighbor>> levels_;
};

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_RC_NNS_H_
