#include "core/serialize.h"

#include <fstream>
#include <stdexcept>

namespace lccs {
namespace core {

namespace {

constexpr char kMagic[8] = {'L', 'C', 'C', 'S', 'I', 'D', 'X', '1'};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in) throw std::runtime_error("truncated index stream");
}

}  // namespace

void SaveIndex(const std::string& path, const IndexDescriptor& descriptor,
               const CircularShiftArray& csa) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, static_cast<uint32_t>(descriptor.family));
  WritePod(out, static_cast<uint32_t>(descriptor.metric));
  WritePod(out, descriptor.dim);
  WritePod(out, descriptor.m);
  WritePod(out, descriptor.w);
  WritePod(out, descriptor.seed);
  WritePod(out, static_cast<uint64_t>(descriptor.probes.num_probes));
  WritePod(out, static_cast<int64_t>(descriptor.probes.max_gap));
  WritePod(out, static_cast<uint64_t>(descriptor.probes.num_alternatives));
  WritePod(out, static_cast<uint8_t>(descriptor.probes.skip_unaffected));
  csa.Serialize(out);
  if (!out) throw std::runtime_error("write error: " + path);
}

std::unique_ptr<MpLccsLsh> LoadIndex(const std::string& path,
                                     const float* data, size_t n, size_t d) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(magic), kMagic)) {
    throw std::runtime_error("not an LCCS index file: " + path);
  }
  IndexDescriptor descriptor;
  uint32_t family = 0, metric = 0;
  ReadPod(in, &family);
  ReadPod(in, &metric);
  descriptor.family = static_cast<lsh::FamilyKind>(family);
  descriptor.metric = static_cast<util::Metric>(metric);
  ReadPod(in, &descriptor.dim);
  ReadPod(in, &descriptor.m);
  ReadPod(in, &descriptor.w);
  ReadPod(in, &descriptor.seed);
  uint64_t num_probes = 0, num_alternatives = 0;
  int64_t max_gap = 0;
  uint8_t skip_unaffected = 1;
  ReadPod(in, &num_probes);
  ReadPod(in, &max_gap);
  ReadPod(in, &num_alternatives);
  ReadPod(in, &skip_unaffected);
  descriptor.probes.num_probes = num_probes;
  descriptor.probes.max_gap = static_cast<int>(max_gap);
  descriptor.probes.num_alternatives = num_alternatives;
  descriptor.probes.skip_unaffected = skip_unaffected != 0;

  if (descriptor.dim != d) {
    throw std::runtime_error("index dimension mismatch");
  }
  CircularShiftArray csa = CircularShiftArray::Deserialize(in);
  if (csa.n() != n) {
    throw std::runtime_error("index size does not match supplied data");
  }
  auto lsh_family =
      lsh::MakeFamily(descriptor.family, descriptor.dim, descriptor.m,
                      descriptor.w, descriptor.seed);
  auto index = std::make_unique<MpLccsLsh>(std::move(lsh_family),
                                           descriptor.metric,
                                           descriptor.probes);
  index->AttachPrebuilt(data, n, d, std::move(csa));
  return index;
}

}  // namespace core
}  // namespace lccs
