#include "core/serialize.h"

#include <fstream>
#include <stdexcept>

#include "core/stream_io.h"

namespace lccs {
namespace core {

namespace {

constexpr char kMagic[8] = {'L', 'C', 'C', 'S', 'I', 'D', 'X', '1'};
// Version 2: the embedded state stream gained an epoch-storage-kind byte
// (inline floats vs external flat-file reference).
constexpr char kDynMagic[8] = {'L', 'C', 'C', 'S', 'D', 'Y', 'X', '2'};

using io::WritePod;

template <typename T>
void ReadPod(std::istream& in, T* value) {
  io::ReadPod(in, value, "index stream");
}

}  // namespace

void SaveIndex(const std::string& path, const IndexDescriptor& descriptor,
               const CircularShiftArray& csa) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, static_cast<uint32_t>(descriptor.family));
  WritePod(out, static_cast<uint32_t>(descriptor.metric));
  WritePod(out, descriptor.dim);
  WritePod(out, descriptor.m);
  WritePod(out, descriptor.w);
  WritePod(out, descriptor.seed);
  WritePod(out, static_cast<uint64_t>(descriptor.probes.num_probes));
  WritePod(out, static_cast<int64_t>(descriptor.probes.max_gap));
  WritePod(out, static_cast<uint64_t>(descriptor.probes.num_alternatives));
  WritePod(out, static_cast<uint8_t>(descriptor.probes.skip_unaffected));
  csa.Serialize(out);
  if (!out) throw std::runtime_error("write error: " + path);
}

namespace {

/// Shared header parse of LoadIndex / ReadIndexDescriptor; leaves `in`
/// positioned at the CSA payload.
IndexDescriptor ReadDescriptor(std::istream& in, const std::string& path) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(magic), kMagic)) {
    throw std::runtime_error("not an LCCS index file: " + path);
  }
  IndexDescriptor descriptor;
  uint32_t family = 0, metric = 0;
  ReadPod(in, &family);
  ReadPod(in, &metric);
  descriptor.family = static_cast<lsh::FamilyKind>(family);
  descriptor.metric = static_cast<util::Metric>(metric);
  ReadPod(in, &descriptor.dim);
  ReadPod(in, &descriptor.m);
  ReadPod(in, &descriptor.w);
  ReadPod(in, &descriptor.seed);
  uint64_t num_probes = 0, num_alternatives = 0;
  int64_t max_gap = 0;
  uint8_t skip_unaffected = 1;
  ReadPod(in, &num_probes);
  ReadPod(in, &max_gap);
  ReadPod(in, &num_alternatives);
  ReadPod(in, &skip_unaffected);
  descriptor.probes.num_probes = num_probes;
  descriptor.probes.max_gap = static_cast<int>(max_gap);
  descriptor.probes.num_alternatives = num_alternatives;
  descriptor.probes.skip_unaffected = skip_unaffected != 0;
  return descriptor;
}

}  // namespace

IndexDescriptor ReadIndexDescriptor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return ReadDescriptor(in, path);
}

std::unique_ptr<MpLccsLsh> LoadIndex(const std::string& path,
                                     const float* data, size_t n, size_t d) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  const IndexDescriptor descriptor = ReadDescriptor(in, path);

  if (descriptor.dim != d) {
    throw std::runtime_error("index dimension mismatch");
  }
  CircularShiftArray csa = CircularShiftArray::Deserialize(in);
  if (csa.n() != n) {
    throw std::runtime_error("index size does not match supplied data");
  }
  auto lsh_family =
      lsh::MakeFamily(descriptor.family, descriptor.dim, descriptor.m,
                      descriptor.w, descriptor.seed);
  auto index = std::make_unique<MpLccsLsh>(std::move(lsh_family),
                                           descriptor.metric,
                                           descriptor.probes);
  index->AttachPrebuilt(data, n, d, std::move(csa));
  return index;
}

namespace {

void WriteLccsParams(std::ostream& out,
                     const baselines::LccsLshIndex::Params& params,
                     util::Metric metric) {
  const lsh::FamilyKind family =
      params.family.value_or(lsh::DefaultFamilyFor(metric));
  WritePod(out, static_cast<uint32_t>(family));
  WritePod(out, static_cast<uint64_t>(params.m));
  WritePod(out, static_cast<uint64_t>(params.lambda));
  WritePod(out, static_cast<uint64_t>(params.num_probes));
  WritePod(out, static_cast<int64_t>(params.max_gap));
  WritePod(out, static_cast<uint64_t>(params.num_alternatives));
  WritePod(out, params.w);
  WritePod(out, params.seed);
}

baselines::LccsLshIndex::Params ReadLccsParams(std::istream& in) {
  baselines::LccsLshIndex::Params params;
  uint32_t family = 0;
  uint64_t m = 0, lambda = 0, num_probes = 0, num_alternatives = 0;
  int64_t max_gap = 0;
  ReadPod(in, &family);
  ReadPod(in, &m);
  ReadPod(in, &lambda);
  ReadPod(in, &num_probes);
  ReadPod(in, &max_gap);
  ReadPod(in, &num_alternatives);
  ReadPod(in, &params.w);
  ReadPod(in, &params.seed);
  if (m == 0 || num_probes == 0 ||
      family > static_cast<uint32_t>(lsh::FamilyKind::kMinHash)) {
    throw std::runtime_error(
        "dynamic index file corrupt: invalid LCCS parameters");
  }
  params.family = static_cast<lsh::FamilyKind>(family);
  params.m = m;
  params.lambda = lambda;
  params.num_probes = num_probes;
  params.max_gap = static_cast<int>(max_gap);
  params.num_alternatives = num_alternatives;
  return params;
}

}  // namespace

void SaveDynamicIndex(const std::string& path,
                      const baselines::LccsLshIndex::Params& params,
                      const DynamicIndex& index, SaveMode mode) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.write(kDynMagic, sizeof(kDynMagic));
  // The factory parameters come first so Load can reconstruct the factory
  // before touching the state stream.
  WriteLccsParams(out, params, index.metric());
  index.SerializeState(
      out,
      [&](std::ostream& stream, const baselines::AnnIndex& epoch_index) {
        const auto* lccs =
            dynamic_cast<const baselines::LccsLshIndex*>(&epoch_index);
        if (lccs == nullptr) {
          throw std::invalid_argument(
              "SaveDynamicIndex: epoch index is not an LccsLshIndex");
        }
        lccs->scheme().csa().Serialize(stream);
      },
      /*external_vectors=*/mode == SaveMode::kExternalVectors);
  if (!out) throw std::runtime_error("write error: " + path);
}

std::unique_ptr<DynamicIndex> LoadDynamicIndex(const std::string& path,
                                               DynamicIndex::Options options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  char magic[sizeof(kDynMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(magic), kDynMagic)) {
    throw std::runtime_error("not an LCCS dynamic index file: " + path);
  }
  const baselines::LccsLshIndex::Params params = ReadLccsParams(in);
  DynamicIndex::Factory factory = [params] {
    return std::make_unique<baselines::LccsLshIndex>(params);
  };
  return DynamicIndex::DeserializeState(
      in, std::move(factory), options,
      [&params](std::istream& stream, const dataset::Dataset& data) {
        CircularShiftArray csa = CircularShiftArray::Deserialize(stream);
        if (csa.n() != data.n()) {
          throw std::runtime_error(
              "dynamic index file corrupt: epoch CSA size does not match "
              "its snapshot");
        }
        auto epoch = std::make_unique<baselines::LccsLshIndex>(params);
        epoch->AttachPrebuilt(data, std::move(csa));
        return epoch;
      });
}

}  // namespace core
}  // namespace lccs
