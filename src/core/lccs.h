#ifndef LCCS_CORE_LCCS_H_
#define LCCS_CORE_LCCS_H_

#include <cstdint>
#include <vector>

#include "lsh/hash_family.h"

namespace lccs {
namespace core {

using lsh::HashValue;

/// Reference (brute-force) implementations of the paper's Definitions 3.1 and
/// 3.2 plus Fact 3.1. These are O(m²) per pair and exist as the executable
/// specification that the CSA fast path is property-tested against; they are
/// also handy for small-scale debugging.

/// Length of the longest common prefix of shift(T, s) and shift(Q, s), where
/// both strings have length m and shift(X, s) = [x_{s+1}, ..., x_m, x_1, ...,
/// x_s] (0-based: starts at index s).
int32_t CircularLcp(const HashValue* t, const HashValue* q, size_t m,
                    size_t shift);

/// |LCCS(T, Q)| computed via Fact 3.1:
///   LCCS(T, Q) = max_{s in {0..m-1}} LCP(shift(T, s), shift(Q, s)).
int32_t LccsLength(const HashValue* t, const HashValue* q, size_t m);

/// Checks Definition 3.1 directly: returns true iff the substring of length
/// `len` starting at 0-based position `start` (wrapping circularly) matches
/// between T and Q at the *same* positions. An empty substring (len == 0) is
/// always a circular co-substring.
bool IsCircularCoSubstring(const HashValue* t, const HashValue* q, size_t m,
                           size_t start, size_t len);

/// Lexicographic three-way comparison of shift(T, s) vs shift(Q, s),
/// returning {-1, 0, +1} and the LCP length via `lcp` (may be null).
/// `skip` asserts that the first `skip` symbols of the shifted strings are
/// already known equal (a Manber–Myers LCP bound from a sorted neighbor):
/// the comparison resumes there and `lcp` still reports the total length.
int CompareShifted(const HashValue* t, const HashValue* q, size_t m,
                   size_t shift, int32_t* lcp, int32_t skip = 0);

/// Brute-force k-LCCS search (Definition 3.3) over a row-major collection of
/// n strings of length m: returns the ids of the k strings with the largest
/// |LCCS(T_i, Q)|, ties broken by smaller id. O(n·m²); test oracle only.
std::vector<int32_t> BruteForceKLccs(const HashValue* strings, size_t n,
                                     size_t m, const HashValue* q, size_t k);

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_LCCS_H_
