#ifndef LCCS_CORE_LCCS_LSH_H_
#define LCCS_CORE_LCCS_LSH_H_

#include <memory>
#include <vector>

#include "core/csa.h"
#include "lsh/hash_family.h"
#include "storage/vector_store.h"
#include "util/metric.h"
#include "util/topk.h"

namespace lccs {
namespace core {

/// Single-probe LCCS-LSH (Section 4.1).
///
/// Indexing phase: draw m i.i.d. LSH functions from the injected family,
/// convert every data object o into the hash string
/// H(o) = [h_1(o), ..., h_m(o)], and build a Circular Shift Array over the n
/// hash strings.
///
/// Query phase: compute H(q), run a (λ + k - 1)-LCCS search on the CSA, and
/// verify the returned candidates with the true distance metric, keeping the
/// best k.
///
/// The scheme is LSH-family-independent: any HashFamily works, which is how
/// the same class serves Euclidean (random projection), Angular
/// (cross-polytope / hyperplane) and Hamming (bit sampling) queries.
class LccsLsh {
 public:
  /// Takes ownership of the hash family (which fixes m = family->
  /// num_functions()); `metric` is used only for candidate verification.
  LccsLsh(std::unique_ptr<lsh::HashFamily> family, util::Metric metric);

  /// Builds the index over a shared vector store (heap, borrowed, or
  /// memory-mapped — see storage/vector_store.h). The store is retained,
  /// never copied: hashing reads rows through it and verification runs off
  /// its contiguous base pointer. store->cols() must equal family->dim().
  void Build(std::shared_ptr<const storage::VectorStore> store);

  /// Raw-pointer convenience over `n` row-major `d`-dimensional vectors.
  /// The data is *referenced* (a non-owning BorrowedStore), not copied — it
  /// must outlive the index. `d` must equal family->dim().
  void Build(const float* data, size_t n, size_t d);

  /// c-k-ANNS query: verifies (λ + k - 1) candidates from the k-LCCS search
  /// of H(q) — plus one extra per tombstoned row when a deleted filter is
  /// installed, so heavy deletion can never starve the answer below k while
  /// live rows exist — and returns the k nearest by true distance
  /// (ascending). Dispatches through AppendCandidates, so MpLccsLsh reuses
  /// this body with its multi-probe candidate generation.
  std::vector<util::Neighbor> Query(const float* query, size_t k,
                                    size_t lambda) const;

  /// Cross-query batched form of Query: answers `num_queries` queries stored
  /// row-major and contiguously (dim() floats each), bit-identical per row
  /// to Query. The window is processed in shared passes — one ParallelFor
  /// hashing sweep, per-thread reusable search scratch for the CSA walks,
  /// and one deduplicated PrefetchRows + cache-blocked verification gather
  /// over the union of candidate rows, scattering distances back into each
  /// query's TopK in its original candidate order (which is what keeps
  /// tie-breaking, and therefore results, bit-identical).
  std::vector<std::vector<util::Neighbor>> QueryBatch(const float* queries,
                                                      size_t num_queries,
                                                      size_t k, size_t lambda,
                                                      size_t num_threads = 0)
      const;

  /// Raw LCCS candidates of H(q) without distance verification (exposes the
  /// k-LCCS search itself; used by tests and diagnostics). Deliberately
  /// non-virtual: `mp.LccsLsh::Candidates(...)` must keep meaning the
  /// single-probe Algorithm 2 search even on a multi-probe object.
  std::vector<LccsCandidate> Candidates(const float* query,
                                        size_t count) const;

  size_t n() const { return n_; }
  size_t dim() const { return d_; }
  size_t m() const { return family_->num_functions(); }
  util::Metric metric() const { return metric_; }
  const lsh::HashFamily& family() const { return *family_; }
  const CircularShiftArray& csa() const { return csa_; }

  /// Index memory: CSA arrays plus the family's parameters.
  size_t SizeBytes() const { return csa_.SizeBytes() + family_->SizeBytes(); }

  /// Ablation switch forwarded to the CSA (see
  /// CircularShiftArray::set_use_narrowing).
  void set_use_narrowing(bool enabled) { csa_.set_use_narrowing(enabled); }

  /// Frees the CSA's next-link arrays (one third of the index) at the cost
  /// of full-range binary searches per shift; results are unchanged. See
  /// CircularShiftArray::ReleaseNextLinks for the serialization caveat.
  void ReleaseNextLinks() { csa_.ReleaseNextLinks(); }

  /// Binds a previously serialized CSA instead of hashing + rebuilding
  /// (see core/serialize.h). The CSA must have been built over exactly this
  /// data with this index's family; n/m consistency is checked.
  void AttachPrebuilt(std::shared_ptr<const storage::VectorStore> store,
                      CircularShiftArray csa);
  void AttachPrebuilt(const float* data, size_t n, size_t d,
                      CircularShiftArray csa);

  /// Tombstone bitmap over the n() rows (borrowed; nullptr clears). Rows
  /// marked deleted still live in the CSA — rebuilding it per deletion would
  /// defeat the point — but are dropped during candidate verification, so
  /// they can never appear in a Query result. core::DynamicIndex flips bits
  /// here instead of rebuilding until the next consolidation epoch.
  ///
  /// The set bits are counted here, once, and every query over-fetches that
  /// many extra candidates (the k + removed rule of the snapshot layer):
  /// a caller that flips bits after installation must re-install the filter
  /// to refresh the count, or risk verified sets thinning below k again.
  void set_deleted_filter(const std::vector<uint8_t>* deleted);

  // The user-declared (virtual) destructor would otherwise suppress moves,
  // and tests build indexes in by-value helper functions.
  LccsLsh(LccsLsh&&) = default;
  LccsLsh& operator=(LccsLsh&&) = default;
  virtual ~LccsLsh() = default;

 protected:
  /// Reusable per-thread candidate-generation workspace. MakeScratch is
  /// virtual so MpLccsLsh can extend it with probe buffers; one scratch
  /// serves consecutive queries without reallocating, and must never be
  /// shared across threads.
  struct QueryScratch {
    CircularShiftArray::SearchScratch csa;
    std::vector<HashValue> hash;  ///< H(q) buffer for the sequential path
    /// Probe strings feeding the heap, set by PrepareSearch (one entry —
    /// the unperturbed hash — for the base scheme). Must stay valid until
    /// the collect phase finishes.
    std::vector<const HashValue*> probe_ptrs;
    virtual ~QueryScratch() = default;
  };
  virtual std::unique_ptr<QueryScratch> MakeScratch() const;

  /// Everything of the candidate search up to (not including) the heap pop
  /// loop: begins the scratch, runs the bound cascade (plus, in MpLccsLsh,
  /// the perturbed probes of Section 4.2), and records the probe string
  /// pointers in scratch->probe_ptrs. Splitting here lets QueryBatch prepare
  /// several queries and drain their heaps interleaved
  /// (CollectFromHeapInterleaved) while the sequential path drains solo —
  /// both run the identical per-query pop iteration.
  virtual void PrepareSearch(const float* query, const HashValue* hash,
                             QueryScratch* scratch) const;

  /// Appends up to `count` LCCS candidates of the query (whose hash string
  /// `hash` is already computed) to `out`, in the exact order the sequential
  /// search surfaces them: PrepareSearch followed by a solo CollectFromHeap.
  /// Both Query and QueryBatch funnel through PrepareSearch, which is what
  /// makes the batched path identical-by-construction to the sequential one.
  void AppendCandidates(const float* query, const HashValue* hash,
                        size_t count, QueryScratch* scratch,
                        std::vector<LccsCandidate>* out) const;

  /// Candidates fetched per query: λ + k - 1 of the paper plus the count of
  /// tombstoned rows, so post-filtering can drop every deleted candidate and
  /// still leave λ + k - 1 live ones.
  size_t CandidateBudget(size_t k, size_t lambda) const {
    return lambda + (k > 0 ? k - 1 : 0) + deleted_count_;
  }

  /// Raw tombstone bitmap for verification call sites (nullptr = no filter).
  const uint8_t* deleted_rows() const {
    return deleted_ != nullptr ? deleted_->data() : nullptr;
  }

  std::unique_ptr<lsh::HashFamily> family_;
  util::Metric metric_;
  std::shared_ptr<const storage::VectorStore> store_;  ///< base vectors
  size_t n_ = 0;
  size_t d_ = 0;
  CircularShiftArray csa_;
  const std::vector<uint8_t>* deleted_ = nullptr;  // not owned
  size_t deleted_count_ = 0;  ///< set bits in *deleted_ at install time
};

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_LCCS_LSH_H_
