#ifndef LCCS_CORE_LCCS_LSH_H_
#define LCCS_CORE_LCCS_LSH_H_

#include <memory>
#include <vector>

#include "core/csa.h"
#include "lsh/hash_family.h"
#include "storage/vector_store.h"
#include "util/metric.h"
#include "util/topk.h"

namespace lccs {
namespace core {

/// Single-probe LCCS-LSH (Section 4.1).
///
/// Indexing phase: draw m i.i.d. LSH functions from the injected family,
/// convert every data object o into the hash string
/// H(o) = [h_1(o), ..., h_m(o)], and build a Circular Shift Array over the n
/// hash strings.
///
/// Query phase: compute H(q), run a (λ + k - 1)-LCCS search on the CSA, and
/// verify the returned candidates with the true distance metric, keeping the
/// best k.
///
/// The scheme is LSH-family-independent: any HashFamily works, which is how
/// the same class serves Euclidean (random projection), Angular
/// (cross-polytope / hyperplane) and Hamming (bit sampling) queries.
class LccsLsh {
 public:
  /// Takes ownership of the hash family (which fixes m = family->
  /// num_functions()); `metric` is used only for candidate verification.
  LccsLsh(std::unique_ptr<lsh::HashFamily> family, util::Metric metric);

  /// Builds the index over a shared vector store (heap, borrowed, or
  /// memory-mapped — see storage/vector_store.h). The store is retained,
  /// never copied: hashing reads rows through it and verification runs off
  /// its contiguous base pointer. store->cols() must equal family->dim().
  void Build(std::shared_ptr<const storage::VectorStore> store);

  /// Raw-pointer convenience over `n` row-major `d`-dimensional vectors.
  /// The data is *referenced* (a non-owning BorrowedStore), not copied — it
  /// must outlive the index. `d` must equal family->dim().
  void Build(const float* data, size_t n, size_t d);

  /// c-k-ANNS query: verifies (λ + k - 1) candidates from the k-LCCS search
  /// of H(q) and returns the k nearest by true distance (ascending).
  std::vector<util::Neighbor> Query(const float* query, size_t k,
                                    size_t lambda) const;

  /// Raw LCCS candidates of H(q) without distance verification (exposes the
  /// k-LCCS search itself; used by tests and diagnostics).
  std::vector<LccsCandidate> Candidates(const float* query,
                                        size_t count) const;

  size_t n() const { return n_; }
  size_t dim() const { return d_; }
  size_t m() const { return family_->num_functions(); }
  util::Metric metric() const { return metric_; }
  const lsh::HashFamily& family() const { return *family_; }
  const CircularShiftArray& csa() const { return csa_; }

  /// Index memory: CSA arrays plus the family's parameters.
  size_t SizeBytes() const { return csa_.SizeBytes() + family_->SizeBytes(); }

  /// Ablation switch forwarded to the CSA (see
  /// CircularShiftArray::set_use_narrowing).
  void set_use_narrowing(bool enabled) { csa_.set_use_narrowing(enabled); }

  /// Binds a previously serialized CSA instead of hashing + rebuilding
  /// (see core/serialize.h). The CSA must have been built over exactly this
  /// data with this index's family; n/m consistency is checked.
  void AttachPrebuilt(std::shared_ptr<const storage::VectorStore> store,
                      CircularShiftArray csa);
  void AttachPrebuilt(const float* data, size_t n, size_t d,
                      CircularShiftArray csa);

  /// Tombstone bitmap over the n() rows (borrowed; nullptr clears). Rows
  /// marked deleted still live in the CSA — rebuilding it per deletion would
  /// defeat the point — but are dropped during candidate verification, so
  /// they can never appear in a Query result. core::DynamicIndex flips bits
  /// here instead of rebuilding until the next consolidation epoch.
  void set_deleted_filter(const std::vector<uint8_t>* deleted) {
    deleted_ = deleted;
  }

 protected:
  /// Raw tombstone bitmap for verification call sites (nullptr = no filter).
  const uint8_t* deleted_rows() const {
    return deleted_ != nullptr ? deleted_->data() : nullptr;
  }

  std::unique_ptr<lsh::HashFamily> family_;
  util::Metric metric_;
  std::shared_ptr<const storage::VectorStore> store_;  ///< base vectors
  size_t n_ = 0;
  size_t d_ = 0;
  CircularShiftArray csa_;
  const std::vector<uint8_t>* deleted_ = nullptr;  // not owned
};

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_LCCS_LSH_H_
