#ifndef LCCS_CORE_THEORY_H_
#define LCCS_CORE_THEORY_H_

#include <cstddef>
#include <cstdint>

namespace lccs {
namespace core {
namespace theory {

/// Analytical companions to Section 5 of the paper. Everything here is pure
/// math — used for parameter selection (λ, m), for the quality-guarantee
/// bench (Table 1) and for the property tests that validate Lemma 5.2's
/// extreme-value approximation against Monte-Carlo simulation.

/// Hash quality ρ = ln(1/p1) / ln(1/p2) (Theorem 2.1).
double Rho(double p1, double p2);

/// Extreme-value CDF F̂_p(x) = exp(-p^x) (Lemma 5.2).
double ExtremeValueCdf(double x, double p);

/// Asymptotic model of F_{m,p}(x) = Pr[|LCCS(T,Q)| <= x] for hash strings of
/// length m whose symbols match independently with probability p:
/// F̂_{m,p}(x) = F̂_p(x - log_{1/p}(m (1 - p))).
double LccsCdfModel(double x, size_t m, double p);

/// Median of F̂_{m,p} (Eq. (6)): x_{1/2,p} = log_p(ln 2) + log_{1/p}(m(1-p)).
double MedianLccsLength(size_t m, double p);

/// (1 - k/n)-quantile of F̂_{m,p} (Eq. (7)):
/// x_{1-k/n,p} = log_p(-ln(1 - k/n)) + log_{1/p}(m(1-p)).
double QuantileLccsLength(size_t m, double p, double tail_fraction);

/// The λ of Theorem 5.1 guaranteeing (R, c)-NNS success probability >= 1/4:
/// λ = m^{1-1/ρ} · n · (1-p1)^{-1/ρ} · (1-p2) · (ln 2)^{1/ρ} / p2.
/// The result is clamped to [1, n].
size_t LambdaForGuarantee(size_t n, size_t m, double p1, double p2);

/// Corollary 5.1's m = Θ(n^{αρ}) for a trade-off knob α in [0, 1/(1-ρ)].
/// Clamped below by 1.
size_t MForAlpha(double alpha, size_t n, double rho);

/// Monte-Carlo estimate of Pr[|LCCS(T, Q)| <= x] over `trials` random string
/// pairs with i.i.d. per-symbol match probability p. Test oracle for
/// Lemma 5.2.
double EstimateLccsCdf(int32_t x, size_t m, double p, size_t trials,
                       uint64_t seed);

}  // namespace theory
}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_THEORY_H_
