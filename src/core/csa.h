#ifndef LCCS_CORE_CSA_H_
#define LCCS_CORE_CSA_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/lccs.h"

namespace lccs {
namespace core {

/// One answer of a k-LCCS search: a string id and the LCP length at the shift
/// through which the search surfaced it (a lower bound on |LCCS(T_id, Q)|,
/// and equal to it for the first time an id is popped).
struct LccsCandidate {
  int32_t id = -1;
  int32_t len = 0;
};

/// Circular Shift Array (Section 3.2, Algorithms 1 and 2).
///
/// Indexes n strings of identical length m so that k-LCCS queries
/// (Definition 3.3) run in O(log n + (m + k) log m) expected time
/// (Theorem 3.1). The structure stores, for every shift i in [0, m):
///
///   * I_i — the ids of all strings sorted by shift(T, i) lexicographically
///           (the "sorted indices" of Algorithm 1), and
///   * N_i — the "next links": N_i[pos] is the position in I_{(i+1) % m} of
///           the string stored at position pos of I_i.
///
/// Build cost is O(m n log n): shift 0 is sorted with a circular comparator,
/// and every other shift order is derived from its successor in O(n log n)
/// with O(1)-cost comparisons — shift(T, i) equals [t_i] ++ shift(T, i+1)
/// minus its last element, so sorting by the pair (t_i, rank at shift i+1)
/// reproduces the shift-i order exactly (equal-through-prefix strings can
/// only be permuted when fully equal, where order is immaterial; we break
/// such ties by id for determinism).
///
/// The low-level primitives (per-shift binary search, LCP, next links) are
/// public so that MP-LCCS-LSH (Section 4.2) can drive its multi-probe search
/// over the same arrays.
class CircularShiftArray {
 public:
  CircularShiftArray() = default;

  /// Builds the CSA over `n` strings of length `m` stored row-major in
  /// `strings` (Algorithm 1). The data is copied. Requires n >= 1, m >= 1.
  void Build(const HashValue* strings, size_t n, size_t m);

  size_t n() const { return n_; }
  size_t m() const { return m_; }
  bool empty() const { return n_ == 0; }

  /// Id of the string at position `pos` of sorted index I_shift.
  int32_t SortedId(size_t shift, size_t pos) const {
    return sorted_[shift * n_ + pos];
  }

  /// Next link: position in I_{(shift+1) % m} of the string at position
  /// `pos` of I_shift.
  int32_t NextPosition(size_t shift, size_t pos) const {
    return next_[shift * n_ + pos];
  }

  /// Pointer to the m hash values of string `id`.
  const HashValue* String(int32_t id) const {
    return data_.data() + static_cast<size_t>(id) * m_;
  }

  /// Result of locating shift(Q, shift) within the sorted index I_shift.
  struct ShiftBounds {
    int32_t pos_lo = -1;  ///< position of T_l = max{T <= Q}; -1 if Q < min
    int32_t pos_hi = 0;   ///< position of T_u = min{T > Q}; n if Q >= max
    int32_t len_lo = 0;   ///< |LCP(shift(T_l, shift), shift(Q, shift))|
    int32_t len_hi = 0;   ///< |LCP(shift(T_u, shift), shift(Q, shift))|
  };

  /// Binary search of shift(Q, shift) over positions [lo, hi] of I_shift
  /// (inclusive bounds; pass 0, n-1 for a full search). Returns the
  /// lower/upper bounding positions and their LCP lengths.
  ShiftBounds SearchShift(const HashValue* query, size_t shift, int32_t lo,
                          int32_t hi) const;

  /// LCP between shift(T_id, shift) and shift(Q, shift), capped at m.
  int32_t Lcp(int32_t id, const HashValue* query, size_t shift) const {
    return CircularLcp(String(id), query, m_, shift);
  }

  /// k-LCCS search (Algorithm 2): returns up to k distinct string ids in
  /// non-increasing order of |LCCS(T, Q)|.
  std::vector<LccsCandidate> Search(const HashValue* query, size_t k) const;

  /// Same as Search but also exposes the per-shift bounds computed during
  /// the narrowed binary-search cascade (needed by MP-LCCS-LSH to skip
  /// unaffected positions, Section 4.2).
  std::vector<LccsCandidate> Search(const HashValue* query, size_t k,
                                    std::vector<ShiftBounds>* state) const;

  /// Memory footprint of the index (data + sorted indices + next links).
  size_t SizeBytes() const {
    return data_.size() * sizeof(HashValue) +
           sorted_.size() * sizeof(int32_t) + next_.size() * sizeof(int32_t);
  }

  /// Ablation switch: when disabled, Search performs a full-range binary
  /// search on every shift instead of the next-link-narrowed cascade of
  /// Corollary 3.2. Results are identical; only the query cost changes
  /// (exercised by bench/ablation_csa and the equivalence property test).
  void set_use_narrowing(bool enabled) { use_narrowing_ = enabled; }
  bool use_narrowing() const { return use_narrowing_; }

  /// Writes the complete structure (n, m, hash strings, sorted indices,
  /// next links) to a binary stream; little-endian, versioned magic header.
  void Serialize(std::ostream& out) const;

  /// Reconstructs a CSA previously written by Serialize. Throws
  /// std::runtime_error on malformed input.
  static CircularShiftArray Deserialize(std::istream& in);

  /// Entry of the shared candidate priority queue of Algorithm 2. Public so
  /// the multi-probe scheme can merge entries from several probe strings
  /// into one queue (the `probe` tag selects the query string to extend
  /// LCPs against).
  struct HeapEntry {
    int32_t len = 0;
    int32_t pos = 0;
    int32_t shift = 0;
    int32_t probe = 0;
    int8_t dir = 0;  // -1 expands downward, +1 upward

    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      // std::priority_queue is a max-heap: order by len, deterministic
      // tie-breaks so query results are reproducible.
      if (a.len != b.len) return a.len < b.len;
      if (a.shift != b.shift) return a.shift > b.shift;
      if (a.pos != b.pos) return a.pos > b.pos;
      if (a.probe != b.probe) return a.probe > b.probe;
      return a.dir > b.dir;
    }
  };

 private:
  /// Three-way compare of shift(T_id, shift) against shift(Q, shift),
  /// setting *lcp to the common-prefix length.
  int Compare(int32_t id, const HashValue* query, size_t shift,
              int32_t* lcp) const;

  size_t n_ = 0;
  size_t m_ = 0;
  bool use_narrowing_ = true;
  std::vector<HashValue> data_;  // n x m, row-major
  std::vector<int32_t> sorted_;  // m x n: I_i
  std::vector<int32_t> next_;    // m x n: N_i
};

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_CSA_H_
