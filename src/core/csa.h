#ifndef LCCS_CORE_CSA_H_
#define LCCS_CORE_CSA_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/lccs.h"

namespace lccs {
namespace core {

/// One answer of a k-LCCS search: a string id and the LCP length at the shift
/// through which the search surfaced it (a lower bound on |LCCS(T_id, Q)|,
/// and equal to it for the first time an id is popped).
struct LccsCandidate {
  int32_t id = -1;
  int32_t len = 0;
};

/// Circular Shift Array (Section 3.2, Algorithms 1 and 2).
///
/// Indexes n strings of identical length m so that k-LCCS queries
/// (Definition 3.3) run in O(log n + (m + k) log m) expected time
/// (Theorem 3.1). The structure stores, for every shift i in [0, m):
///
///   * I_i — the ids of all strings sorted by shift(T, i) lexicographically
///           (the "sorted indices" of Algorithm 1), and
///   * N_i — the "next links": N_i[pos] is the position in I_{(i+1) % m} of
///           the string stored at position pos of I_i.
///
/// Build cost is O(m n log n): shift 0 is sorted with a circular comparator,
/// and every other shift order is derived from its successor in O(n log n)
/// with O(1)-cost comparisons — shift(T, i) equals [t_i] ++ shift(T, i+1)
/// minus its last element, so sorting by the pair (t_i, rank at shift i+1)
/// reproduces the shift-i order exactly (equal-through-prefix strings can
/// only be permuted when fully equal, where order is immaterial; we break
/// such ties by id for determinism).
///
/// The low-level primitives (per-shift binary search, LCP, next links) are
/// public so that MP-LCCS-LSH (Section 4.2) can drive its multi-probe search
/// over the same arrays.
class CircularShiftArray {
 public:
  CircularShiftArray() = default;

  /// Builds the CSA over `n` strings of length `m` stored row-major in
  /// `strings` (Algorithm 1). The data is copied. Requires n >= 1, m >= 1.
  void Build(const HashValue* strings, size_t n, size_t m);

  size_t n() const { return n_; }
  size_t m() const { return m_; }
  bool empty() const { return n_ == 0; }

  /// Id of the string at position `pos` of sorted index I_shift.
  int32_t SortedId(size_t shift, size_t pos) const {
    return sorted_[shift * n_ + pos];
  }

  /// Next link: position in I_{(shift+1) % m} of the string at position
  /// `pos` of I_shift.
  int32_t NextPosition(size_t shift, size_t pos) const {
    return next_[shift * n_ + pos];
  }

  /// Pointer to the m hash values of string `id`.
  const HashValue* String(int32_t id) const {
    return data_.data() + static_cast<size_t>(id) * m_;
  }

  /// Result of locating shift(Q, shift) within the sorted index I_shift.
  struct ShiftBounds {
    int32_t pos_lo = -1;  ///< position of T_l = max{T <= Q}; -1 if Q < min
    int32_t pos_hi = 0;   ///< position of T_u = min{T > Q}; n if Q >= max
    int32_t len_lo = 0;   ///< |LCP(shift(T_l, shift), shift(Q, shift))|
    int32_t len_hi = 0;   ///< |LCP(shift(T_u, shift), shift(Q, shift))|
  };

  /// Binary search of shift(Q, shift) over positions [lo, hi] of I_shift
  /// (inclusive bounds; pass 0, n-1 for a full search). Returns the
  /// lower/upper bounding positions and their LCP lengths.
  ShiftBounds SearchShift(const HashValue* query, size_t shift, int32_t lo,
                          int32_t hi) const;

  /// Batch-friendly SearchShift entry taking the previous shift's
  /// precomputed bounds: narrows the binary search of shift `shift` through
  /// the next links of shift - 1 (Corollary 3.2) when `prev` matched at
  /// least one symbol on both sides, and falls back to a full [0, n-1]
  /// search otherwise — the one cascade step both Search and the multi-probe
  /// scheme used to duplicate inline. Respects use_narrowing().
  ShiftBounds SearchShiftFrom(const HashValue* query, size_t shift,
                              const ShiftBounds& prev) const;

  /// LCP between shift(T_id, shift) and shift(Q, shift), capped at m.
  int32_t Lcp(int32_t id, const HashValue* query, size_t shift) const {
    return CircularLcp(String(id), query, m_, shift);
  }

  /// k-LCCS search (Algorithm 2): returns up to k distinct string ids in
  /// non-increasing order of |LCCS(T, Q)|.
  std::vector<LccsCandidate> Search(const HashValue* query, size_t k) const;

  /// Same as Search but also exposes the per-shift bounds computed during
  /// the narrowed binary-search cascade (needed by MP-LCCS-LSH to skip
  /// unaffected positions, Section 4.2).
  std::vector<LccsCandidate> Search(const HashValue* query, size_t k,
                                    std::vector<ShiftBounds>* state) const;

  /// Memory footprint of the index (data + sorted indices + next links).
  size_t SizeBytes() const {
    return data_.size() * sizeof(HashValue) +
           sorted_.size() * sizeof(int32_t) + next_.size() * sizeof(int32_t);
  }

  /// Frees the next-link arrays (N_i, one third of the index) and disables
  /// narrowing. Next links only accelerate the binary-search cascade
  /// (Corollary 3.2) and back Serialize; a memory-tight deployment — e.g.
  /// bench/disk_store's quantized mode chasing an RSS ceiling — can drop
  /// them after Build and still answer every query exactly (the ablation
  /// equivalence property: full-range searches return identical results).
  /// Irreversible for this instance; Serialize afterwards throws
  /// std::logic_error rather than writing a structure Deserialize could not
  /// rebuild.
  void ReleaseNextLinks();
  bool next_links_released() const { return next_released_; }

  /// Ablation switch: when disabled, Search performs a full-range binary
  /// search on every shift instead of the next-link-narrowed cascade of
  /// Corollary 3.2. Results are identical; only the query cost changes
  /// (exercised by bench/ablation_csa and the equivalence property test).
  void set_use_narrowing(bool enabled) { use_narrowing_ = enabled; }
  bool use_narrowing() const { return use_narrowing_; }

  /// Writes the complete structure (n, m, hash strings, sorted indices,
  /// next links) to a binary stream; little-endian, versioned magic header.
  void Serialize(std::ostream& out) const;

  /// Reconstructs a CSA previously written by Serialize. Throws
  /// std::runtime_error on malformed input.
  static CircularShiftArray Deserialize(std::istream& in);

  /// Entry of the shared candidate priority queue of Algorithm 2, packed
  /// into one uint64 whose *natural descending order is the pop order*:
  /// larger len pops first, ties broken deterministically by smaller shift,
  /// then smaller pos, smaller probe, and downward direction — ascending
  /// tie-break fields are stored complemented so plain integer > realizes
  /// the whole five-field comparison branchlessly (the pop loop spends a
  /// meaningful share of its time in heap sift compares; a 16-byte struct
  /// with a five-branch comparator was measurably slower). Field widths cap
  /// m at 4095, n at 2^31 - 1 and the probe tag at 255 — asserted where the
  /// values enter, and orders of magnitude above the paper's scales.
  ///
  /// Layout (MSB to LSB): len:12 | 4095-shift:12 | (2^31-1)-pos:31 |
  /// 255-probe:8 | (dir < 0):1.
  using HeapKey = uint64_t;
  static HeapKey PackHeapKey(int32_t len, int32_t shift, int32_t pos,
                             int32_t probe, int dir) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(len)) << 52) |
           ((0xFFFull - static_cast<uint32_t>(shift)) << 40) |
           ((0x7FFFFFFFull - static_cast<uint32_t>(pos)) << 9) |
           ((0xFFull - static_cast<uint32_t>(probe)) << 1) |
           (dir < 0 ? 1u : 0u);
  }
  static int32_t HeapKeyLen(HeapKey k) {
    return static_cast<int32_t>(k >> 52);
  }
  static int32_t HeapKeyShift(HeapKey k) {
    return 0xFFF - static_cast<int32_t>((k >> 40) & 0xFFFu);
  }
  static int32_t HeapKeyPos(HeapKey k) {
    return 0x7FFFFFFF - static_cast<int32_t>((k >> 9) & 0x7FFFFFFFu);
  }
  static int32_t HeapKeyProbe(HeapKey k) {
    return 0xFF - static_cast<int32_t>((k >> 1) & 0xFFu);
  }
  static int32_t HeapKeyDir(HeapKey k) { return (k & 1u) != 0 ? -1 : +1; }

  /// Reusable per-thread workspace for Search / CollectFromHeap. One scratch
  /// serves any number of consecutive queries against the same CSA without
  /// reallocating: the heap vector keeps its capacity, and the seen/visited
  /// stamp arrays are O(1) to "clear" (the stamp increments instead). The
  /// batched query engine holds one per ParallelFor chunk; sharing one
  /// scratch across threads is a race.
  struct SearchScratch {
    std::vector<ShiftBounds> state;  ///< per-shift bounds of the base search
    std::vector<HeapKey> heap;       ///< std::push_heap/pop_heap max-heap
    /// Stamps are uint8 on purpose: the pop loop's chain fast-forward does
    /// an order of magnitude more stamp lookups than anything else it
    /// touches, and the byte-dense arrays keep them cache-resident (n bytes
    /// instead of 4n). The 255-query wrap costs one refill per 255 queries.
    std::vector<uint8_t> seen;     ///< id -> stamp of the query that saw it
    std::vector<uint8_t> visited;  ///< shift*n + pos -> stamp (multi-probe)
    uint8_t stamp = 0;             ///< current query's stamp

    /// Starts a new query: bumps the stamp and (re)sizes the id-dedup array.
    /// `positions` > 0 additionally sizes the frontier-position dedup array
    /// (m*n entries — only the multi-probe pop loop pays for it).
    void Begin(size_t n, size_t m, size_t positions);
  };

  /// Seeds `scratch->heap` with the bound entries of `b` tagged `probe`
  /// (the push_bounds step shared by Algorithm 2 and the multi-probe scheme).
  void PushBounds(const ShiftBounds& b, size_t shift, int32_t probe,
                  SearchScratch* scratch) const;

  /// The narrowed binary-search cascade of Algorithm 2 lines 2-11: fills
  /// scratch->state with per-shift bounds of `query` and seeds the heap via
  /// PushBounds with probe tag 0. Call Begin first.
  void SearchBounds(const HashValue* query, SearchScratch* scratch) const;

  /// The frontier pop loop of Algorithm 2 lines 12-15, generalized over
  /// `num_probes` query strings feeding one heap: appends up to `count`
  /// distinct ids to `out` in non-increasing LCP order. With more than one
  /// probe, frontier positions are deduplicated through scratch->visited
  /// (the redundancy control of Example 4.1); with one probe the lo/hi
  /// chains never collide, so the check is skipped. Entries must already be
  /// heaped (SearchBounds / PushBounds) and expansion extends LCPs against
  /// probes[entry.probe].
  void CollectFromHeap(const HashValue* const* probes, size_t num_probes,
                       size_t count, SearchScratch* scratch,
                       std::vector<LccsCandidate>* out) const;

  /// One query's pop-loop state for CollectFromHeapInterleaved. The scratch
  /// must already be seeded (SearchBounds / PushBounds) and `probes` must
  /// stay valid until the collect finishes.
  struct CollectJob {
    const HashValue* const* probes = nullptr;
    size_t num_probes = 0;
    SearchScratch* scratch = nullptr;
    std::vector<LccsCandidate>* out = nullptr;
  };

  /// CollectFromHeap for several independent queries with their pop loops
  /// interleaved round-robin, one iteration per query per turn. The pop loop
  /// is a dependent chain of random hash-row reads (pop → successor id →
  /// LCP over its hash string), so a single query keeps at most one cache
  /// miss in flight; interleaving keeps `num_jobs` misses in flight and
  /// gives each query's prefetch (issued right after its push) a full
  /// round-trip of other queries' work to land. Per query this runs exactly
  /// the CollectFromHeap iteration on the query's own scratch and output —
  /// results are bit-identical to num_jobs solo calls.
  void CollectFromHeapInterleaved(CollectJob* jobs, size_t num_jobs,
                                  size_t count) const;

 private:
  /// One iteration of the Algorithm 2 pop loop: pops the top entry,
  /// possibly emits its id, advances its chain, and prefetches the hash row
  /// the *next* iteration's LCP will read (the next pop is the current heap
  /// top — nothing is pushed in between). Precondition: heap non-empty and
  /// out not yet full. Returns whether another iteration can run.
  bool CollectStep(const HashValue* const* probes, bool dedup_positions,
                   size_t count, SearchScratch* scratch,
                   std::vector<LccsCandidate>* out) const;

  /// Three-way compare of shift(T_id, shift) against shift(Q, shift),
  /// setting *lcp to the common-prefix length.
  int Compare(int32_t id, const HashValue* query, size_t shift,
              int32_t* lcp) const;

  size_t n_ = 0;
  size_t m_ = 0;
  bool use_narrowing_ = true;
  bool next_released_ = false;
  std::vector<HashValue> data_;  // n x m, row-major
  std::vector<int32_t> sorted_;  // m x n: I_i
  std::vector<int32_t> next_;    // m x n: N_i
};

}  // namespace core
}  // namespace lccs

#endif  // LCCS_CORE_CSA_H_
