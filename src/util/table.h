#ifndef LCCS_UTIL_TABLE_H_
#define LCCS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace lccs {
namespace util {

/// Fixed-width text table used by the benchmark harness to print the rows
/// and series of the paper's tables and figures.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with aligned columns and a separator under the header.
  std::string ToString() const;

  /// Renders as comma-separated values (for post-processing into plots).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string FormatDouble(double v, int digits = 3);

/// Formats a byte count as a human-readable string (KB / MB / GB).
std::string FormatBytes(size_t bytes);

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_TABLE_H_
