#include "util/random.h"

#include <cassert>
#include <cmath>

namespace lccs {
namespace util {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 must be strictly positive for the log.
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Cauchy() {
  double denom;
  do {
    denom = Gaussian();
  } while (denom == 0.0);
  return Gaussian() / denom;
}

void Rng::FillGaussian(float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<float>(Gaussian());
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm would avoid the O(n) init, but n is small wherever this
  // is used; selection sampling keeps the output sorted for free.
  std::vector<size_t> result;
  result.reserve(k);
  size_t remaining = k;
  for (size_t i = 0; i < n && remaining > 0; ++i) {
    const size_t left = n - i;
    if (NextBounded(left) < remaining) {
      result.push_back(i);
      --remaining;
    }
  }
  return result;
}

}  // namespace util
}  // namespace lccs
