#ifndef LCCS_UTIL_RANDOM_H_
#define LCCS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lccs {
namespace util {

/// Deterministic, seedable pseudo-random number generator.
///
/// Uses xoshiro256** for the raw stream (fast, good statistical quality,
/// trivially reproducible across platforms) seeded through splitmix64 so that
/// nearby seeds produce uncorrelated streams. All randomized index structures
/// in this library draw from this generator, which makes every index build
/// bit-reproducible given its seed.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Distinct seeds give
  /// statistically independent streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal N(0, 1) via Box-Muller (cached pair).
  double Gaussian();

  /// Normal with given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Standard Cauchy variate (ratio of two independent normals).
  double Cauchy();

  /// Fills `out` with n i.i.d. N(0,1) floats.
  void FillGaussian(float* out, size_t n);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in increasing order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_RANDOM_H_
