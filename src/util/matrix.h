#ifndef LCCS_UTIL_MATRIX_H_
#define LCCS_UTIL_MATRIX_H_

#include <cstddef>
#include <vector>

namespace lccs {
namespace util {

/// Dense row-major float matrix used to store datasets (n rows of d floats)
/// and projection matrices. Deliberately minimal: contiguous storage, cheap
/// row access, and the handful of linear-algebra kernels the LSH families
/// need (dot products, norms, matrix-vector products).
class Matrix {
 public:
  Matrix() = default;
  /// Throws std::runtime_error when rows * cols overflows size_t — a
  /// corrupt header (e.g. a garbage dim field in a vector file) must fail
  /// loudly, not wrap around and allocate a tiny buffer.
  Matrix(size_t rows, size_t cols, float init = 0.0f)
      : rows_(rows), cols_(cols), data_(CheckedElements(rows, cols), init) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float* Row(size_t i) { return data_.data() + i * cols_; }
  const float* Row(size_t i) const { return data_.data() + i * cols_; }

  float& At(size_t i, size_t j) { return data_[i * cols_ + j]; }
  float At(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  size_t SizeBytes() const { return data_.size() * sizeof(float); }

  /// Resizes to rows x cols, discarding previous contents. Throws
  /// std::runtime_error on rows * cols overflow, like the constructor.
  void Resize(size_t rows, size_t cols);

  /// y = M * x where x has cols() entries and y has rows() entries.
  void MatVec(const float* x, float* y) const;

 private:
  /// rows * cols, or throws std::runtime_error when the product overflows.
  static size_t CheckedElements(size_t rows, size_t cols);

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// Dot product of two d-dimensional float vectors (double accumulator).
double Dot(const float* a, const float* b, size_t d);

/// Squared Euclidean distance.
double SquaredL2(const float* a, const float* b, size_t d);

/// Euclidean distance.
double L2(const float* a, const float* b, size_t d);

/// Euclidean norm.
double Norm(const float* a, size_t d);

/// Angular distance θ(a, b) = arccos(a·b / (|a||b|)) in radians.
/// Returns 0 for zero-norm inputs.
double AngularDistance(const float* a, const float* b, size_t d);

/// Scales `a` in place to unit Euclidean norm; zero vectors are left as-is.
void NormalizeInPlace(float* a, size_t d);

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_MATRIX_H_
