#include "util/simd_distance.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/matrix.h"

#if defined(__x86_64__) || defined(__i386__)
#define LCCS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace lccs {
namespace util {
namespace {

// Rows scored per unrolled step of the batched kernels. Four rows keep one
// accumulator register per row (plus the shared query lanes) without
// spilling, and give the out-of-order core independent FMA chains to hide
// the load latency of the gathered candidate rows.
constexpr size_t kGroup = 4;

// ---------------------------------------------------------------------------
// Scalar reference kernels (the kScalar tier, and the ground truth the AVX2
// kernels are tested against). L2 / dot / angular live in matrix.cc; only
// the binary metrics are defined here.

double ScalarHamming(const float* a, const float* b, size_t d) {
  size_t diff = 0;
  for (size_t i = 0; i < d; ++i) {
    diff += (IsSetCoordinate(a[i]) != IsSetCoordinate(b[i])) ? 1 : 0;
  }
  return static_cast<double>(diff);
}

double ScalarJaccard(const float* a, const float* b, size_t d) {
  size_t inter = 0, uni = 0;
  for (size_t i = 0; i < d; ++i) {
    const bool ba = IsSetCoordinate(a[i]);
    const bool bb = IsSetCoordinate(b[i]);
    inter += (ba && bb) ? 1 : 0;
    uni += (ba || bb) ? 1 : 0;
  }
  if (uni == 0) return 0.0;  // two empty sets are identical
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

// Shared final step of the angular distance so the batched path (query norm
// hoisted out of the row loop) and the single-pair path combine the three
// accumulators identically.
double CombineAngular(double dot, double norm2_a, double norm2_b) {
  if (norm2_a == 0.0 || norm2_b == 0.0) return 0.0;
  double cosine = dot / (std::sqrt(norm2_a) * std::sqrt(norm2_b));
  cosine = std::clamp(cosine, -1.0, 1.0);
  return std::acos(cosine);
}

#if LCCS_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels. All are compiled with a `target` attribute, so the
// translation unit itself needs no -mavx2 flag and the binary stays runnable
// on any x86-64: the dispatch below only routes here after a CPUID check.
//
// Every kernel processes up to kGroup rows against one query. Each row owns
// its accumulators and sees exactly the same operation sequence regardless
// of the group size, so a batched call is bit-identical to scoring the rows
// one at a time — which test_simd_distance.cc asserts, and which keeps
// QueryBatch results reproducible no matter how candidates are grouped.
//
// The tail (d % 8 lanes) is handled with masked loads; masked-off lanes
// read as 0.0f, which contributes nothing to any of the accumulators (and
// maps to "bit unset" for the binary metrics).

alignas(32) const int32_t kTailMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                           0,  0,  0,  0,  0,  0,  0,  0};

__attribute__((target("avx2"))) inline __m256i TailMaskFor(size_t rem) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTailMask + 8 - rem));
}

__attribute__((target("avx2"))) inline double HorizontalSum(__m256 v) {
  __m128 lo = _mm_add_ps(_mm256_castps256_ps128(v),
                         _mm256_extractf128_ps(v, 1));
  __m128 shuf = _mm_movehdup_ps(lo);
  const __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  return static_cast<double>(_mm_cvtss_f32(_mm_add_ss(sums, shuf)));
}

__attribute__((target("avx2,fma")))
void L2SqRowsAvx2(const float* const* rows, size_t nrows, const float* q,
                  size_t d, double* out) {
  __m256 acc[kGroup];
  for (size_t r = 0; r < nrows; ++r) acc[r] = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 qv = _mm256_loadu_ps(q + j);
    for (size_t r = 0; r < nrows; ++r) {
      const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(rows[r] + j), qv);
      acc[r] = _mm256_fmadd_ps(diff, diff, acc[r]);
    }
  }
  if (j < d) {
    const __m256i mask = TailMaskFor(d - j);
    const __m256 qv = _mm256_maskload_ps(q + j, mask);
    for (size_t r = 0; r < nrows; ++r) {
      const __m256 diff =
          _mm256_sub_ps(_mm256_maskload_ps(rows[r] + j, mask), qv);
      acc[r] = _mm256_fmadd_ps(diff, diff, acc[r]);
    }
  }
  for (size_t r = 0; r < nrows; ++r) out[r] = HorizontalSum(acc[r]);
}

__attribute__((target("avx2,fma")))
void DotRowsAvx2(const float* const* rows, size_t nrows, const float* q,
                 size_t d, double* out) {
  __m256 acc[kGroup];
  for (size_t r = 0; r < nrows; ++r) acc[r] = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 qv = _mm256_loadu_ps(q + j);
    for (size_t r = 0; r < nrows; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_loadu_ps(rows[r] + j), qv, acc[r]);
    }
  }
  if (j < d) {
    const __m256i mask = TailMaskFor(d - j);
    const __m256 qv = _mm256_maskload_ps(q + j, mask);
    for (size_t r = 0; r < nrows; ++r) {
      acc[r] =
          _mm256_fmadd_ps(_mm256_maskload_ps(rows[r] + j, mask), qv, acc[r]);
    }
  }
  for (size_t r = 0; r < nrows; ++r) out[r] = HorizontalSum(acc[r]);
}

// dot(rows[r], q) and ||rows[r]||² in one pass over each row — the angular
// distance needs both, and the query's own norm is hoisted out and computed
// once per batch with Norm2Avx2.
__attribute__((target("avx2,fma")))
void DotNormRowsAvx2(const float* const* rows, size_t nrows, const float* q,
                     size_t d, double* out_dot, double* out_norm2) {
  __m256 dot[kGroup], nrm[kGroup];
  for (size_t r = 0; r < nrows; ++r) {
    dot[r] = _mm256_setzero_ps();
    nrm[r] = _mm256_setzero_ps();
  }
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 qv = _mm256_loadu_ps(q + j);
    for (size_t r = 0; r < nrows; ++r) {
      const __m256 rv = _mm256_loadu_ps(rows[r] + j);
      dot[r] = _mm256_fmadd_ps(rv, qv, dot[r]);
      nrm[r] = _mm256_fmadd_ps(rv, rv, nrm[r]);
    }
  }
  if (j < d) {
    const __m256i mask = TailMaskFor(d - j);
    const __m256 qv = _mm256_maskload_ps(q + j, mask);
    for (size_t r = 0; r < nrows; ++r) {
      const __m256 rv = _mm256_maskload_ps(rows[r] + j, mask);
      dot[r] = _mm256_fmadd_ps(rv, qv, dot[r]);
      nrm[r] = _mm256_fmadd_ps(rv, rv, nrm[r]);
    }
  }
  for (size_t r = 0; r < nrows; ++r) {
    out_dot[r] = HorizontalSum(dot[r]);
    out_norm2[r] = HorizontalSum(nrm[r]);
  }
}

__attribute__((target("avx2,fma")))
double Norm2Avx2(const float* a, size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 av = _mm256_loadu_ps(a + j);
    acc = _mm256_fmadd_ps(av, av, acc);
  }
  if (j < d) {
    const __m256 av = _mm256_maskload_ps(a + j, TailMaskFor(d - j));
    acc = _mm256_fmadd_ps(av, av, acc);
  }
  return HorizontalSum(acc);
}

// Binary metrics: threshold 8 lanes at once against 0.5 (the SIMD mirror of
// IsSetCoordinate), compress each block to an 8-bit mask with movemask, and
// popcount the combined masks. Counts are exact integers, so these agree
// with the scalar tier bit-for-bit.

__attribute__((target("avx2")))
void HammingRowsAvx2(const float* const* rows, size_t nrows, const float* q,
                     size_t d, double* out) {
  const __m256 half = _mm256_set1_ps(0.5f);
  size_t diff[kGroup] = {0, 0, 0, 0};
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const unsigned qbits = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_cmp_ps(_mm256_loadu_ps(q + j), half, _CMP_GE_OQ)));
    for (size_t r = 0; r < nrows; ++r) {
      const unsigned rbits = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_cmp_ps(_mm256_loadu_ps(rows[r] + j), half, _CMP_GE_OQ)));
      diff[r] += static_cast<size_t>(__builtin_popcount(qbits ^ rbits));
    }
  }
  if (j < d) {
    // Masked-off lanes load 0.0f and threshold to "unset" for query and row
    // alike, so they never differ.
    const __m256i mask = TailMaskFor(d - j);
    const unsigned qbits = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_cmp_ps(_mm256_maskload_ps(q + j, mask), half, _CMP_GE_OQ)));
    for (size_t r = 0; r < nrows; ++r) {
      const unsigned rbits = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(
              _mm256_maskload_ps(rows[r] + j, mask), half, _CMP_GE_OQ)));
      diff[r] += static_cast<size_t>(__builtin_popcount(qbits ^ rbits));
    }
  }
  for (size_t r = 0; r < nrows; ++r) out[r] = static_cast<double>(diff[r]);
}

__attribute__((target("avx2")))
void JaccardRowsAvx2(const float* const* rows, size_t nrows, const float* q,
                     size_t d, double* out) {
  const __m256 half = _mm256_set1_ps(0.5f);
  size_t inter[kGroup] = {0, 0, 0, 0};
  size_t uni[kGroup] = {0, 0, 0, 0};
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const unsigned qbits = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_cmp_ps(_mm256_loadu_ps(q + j), half, _CMP_GE_OQ)));
    for (size_t r = 0; r < nrows; ++r) {
      const unsigned rbits = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_cmp_ps(_mm256_loadu_ps(rows[r] + j), half, _CMP_GE_OQ)));
      inter[r] += static_cast<size_t>(__builtin_popcount(qbits & rbits));
      uni[r] += static_cast<size_t>(__builtin_popcount(qbits | rbits));
    }
  }
  if (j < d) {
    const __m256i mask = TailMaskFor(d - j);
    const unsigned qbits = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_cmp_ps(_mm256_maskload_ps(q + j, mask), half, _CMP_GE_OQ)));
    for (size_t r = 0; r < nrows; ++r) {
      const unsigned rbits = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(
              _mm256_maskload_ps(rows[r] + j, mask), half, _CMP_GE_OQ)));
      inter[r] += static_cast<size_t>(__builtin_popcount(qbits & rbits));
      uni[r] += static_cast<size_t>(__builtin_popcount(qbits | rbits));
    }
  }
  for (size_t r = 0; r < nrows; ++r) {
    out[r] = (uni[r] == 0)
                 ? 0.0
                 : 1.0 - static_cast<double>(inter[r]) /
                             static_cast<double>(uni[r]);
  }
}

// Integer kernel of the quantized tier: sum of codes[j] * weights[j].
// `_mm256_maddubs_epi16` (u8 x s8 pairs) would halve the widening work, but
// it saturates its int16 pair sums — two products of up to 255 * 127 exceed
// 32767 — so codes are widened to int16 and accumulated with
// `_mm256_madd_epi16`, whose int32 pair sums are exact for the |w| <= 4095,
// d <= 8192 contract in the header. The horizontal reduction widens the
// eight int32 lanes to int64 (their total may exceed int32), making the
// result the exact integer the scalar loop computes.
__attribute__((target("avx2")))
int64_t DotCodesI8Avx2(const uint8_t* codes, const int16_t* weights,
                       size_t d) {
  __m256i acc = _mm256_setzero_si256();
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m256i c = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + j)));
    const __m256i w = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(weights + j));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(c, w));
  }
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t sum = 0;
  for (int lane = 0; lane < 8; ++lane) sum += lanes[lane];
  for (; j < d; ++j) {
    sum += static_cast<int64_t>(codes[j]) * weights[j];
  }
  return sum;
}

#endif  // LCCS_SIMD_X86

int64_t DotCodesI8Scalar(const uint8_t* codes, const int16_t* weights,
                         size_t d) {
  int64_t sum = 0;
  for (size_t j = 0; j < d; ++j) {
    sum += static_cast<int64_t>(codes[j]) * weights[j];
  }
  return sum;
}

SimdTier DetectTier() {
#if LCCS_SIMD_X86
  const bool cpu_ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  const char* env = std::getenv("LCCS_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return SimdTier::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return cpu_ok ? SimdTier::kAvx2 : SimdTier::kScalar;
    }
    // Unrecognized value: fall through to auto-detection.
  }
  return cpu_ok ? SimdTier::kAvx2 : SimdTier::kScalar;
#else
  return SimdTier::kScalar;
#endif
}

// Query-side norm² for the angular metric, hoisted out of the row loop of
// the batched kernels. Unused (0.0) for the other metrics and on the scalar
// tier, whose per-pair reference recomputes it internally.
double QueryNorm2(Metric metric, const float* query, size_t d) {
#if LCCS_SIMD_X86
  if (metric == Metric::kAngular && ActiveSimdTier() == SimdTier::kAvx2) {
    return Norm2Avx2(query, d);
  }
#else
  (void)metric;
  (void)query;
  (void)d;
#endif
  return 0.0;
}

// Scores `nrows` (≤ kGroup) rows against the query under `metric`.
void DistanceGroup(Metric metric, const float* const* rows, size_t nrows,
                   const float* query, size_t d, double qnorm2, double* out) {
#if LCCS_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    switch (metric) {
      case Metric::kEuclidean:
        L2SqRowsAvx2(rows, nrows, query, d, out);
        for (size_t r = 0; r < nrows; ++r) out[r] = std::sqrt(out[r]);
        return;
      case Metric::kAngular: {
        double dot[kGroup], norm2[kGroup];
        DotNormRowsAvx2(rows, nrows, query, d, dot, norm2);
        for (size_t r = 0; r < nrows; ++r) {
          out[r] = CombineAngular(dot[r], norm2[r], qnorm2);
        }
        return;
      }
      case Metric::kHamming:
        HammingRowsAvx2(rows, nrows, query, d, out);
        return;
      case Metric::kJaccard:
        JaccardRowsAvx2(rows, nrows, query, d, out);
        return;
    }
    return;
  }
#endif
  (void)qnorm2;
  for (size_t r = 0; r < nrows; ++r) {
    out[r] = Distance(metric, rows[r], query, d);
  }
}

// Warms the first cache lines of a candidate row before its group is
// scored; the hardware prefetcher picks up the sequential remainder.
inline void PrefetchRow(const float* row, size_t d) {
  constexpr size_t kLineFloats = 16;  // 64-byte lines
  const size_t lines =
      std::min<size_t>((d + kLineFloats - 1) / kLineFloats, 8);
  for (size_t l = 0; l < lines; ++l) {
    __builtin_prefetch(row + l * kLineFloats, 0, 3);
  }
}

}  // namespace

SimdTier ActiveSimdTier() {
  static const SimdTier tier = DetectTier();
  return tier;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

namespace simd {

double SquaredL2(const float* a, const float* b, size_t d) {
#if LCCS_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    const float* rows[1] = {a};
    double out;
    L2SqRowsAvx2(rows, 1, b, d, &out);
    return out;
  }
#endif
  return util::SquaredL2(a, b, d);
}

double L2(const float* a, const float* b, size_t d) {
  return std::sqrt(simd::SquaredL2(a, b, d));
}

double Dot(const float* a, const float* b, size_t d) {
#if LCCS_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    const float* rows[1] = {a};
    double out;
    DotRowsAvx2(rows, 1, b, d, &out);
    return out;
  }
#endif
  return util::Dot(a, b, d);
}

double Angular(const float* a, const float* b, size_t d) {
#if LCCS_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    const float* rows[1] = {a};
    double dot, norm2_a;
    DotNormRowsAvx2(rows, 1, b, d, &dot, &norm2_a);
    return CombineAngular(dot, norm2_a, Norm2Avx2(b, d));
  }
#endif
  return util::AngularDistance(a, b, d);
}

double Hamming(const float* a, const float* b, size_t d) {
#if LCCS_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    const float* rows[1] = {a};
    double out;
    HammingRowsAvx2(rows, 1, b, d, &out);
    return out;
  }
#endif
  return ScalarHamming(a, b, d);
}

double Jaccard(const float* a, const float* b, size_t d) {
#if LCCS_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    const float* rows[1] = {a};
    double out;
    JaccardRowsAvx2(rows, 1, b, d, &out);
    return out;
  }
#endif
  return ScalarJaccard(a, b, d);
}

int64_t DotCodesI8(const uint8_t* codes, const int16_t* weights, size_t d) {
  return DotCodesI8Tier(ActiveSimdTier(), codes, weights, d);
}

int64_t DotCodesI8Tier(SimdTier tier, const uint8_t* codes,
                       const int16_t* weights, size_t d) {
#if LCCS_SIMD_X86
  if (tier == SimdTier::kAvx2 && __builtin_cpu_supports("avx2")) {
    return DotCodesI8Avx2(codes, weights, d);
  }
#else
  (void)tier;
#endif
  return DotCodesI8Scalar(codes, weights, d);
}

}  // namespace simd

double Distance(Metric metric, const float* a, const float* b, size_t d) {
  switch (metric) {
    case Metric::kEuclidean:
      return simd::L2(a, b, d);
    case Metric::kAngular:
      return simd::Angular(a, b, d);
    case Metric::kHamming:
      return simd::Hamming(a, b, d);
    case Metric::kJaccard:
      return simd::Jaccard(a, b, d);
  }
  return 0.0;
}

void DistanceMany(Metric metric, const float* data, size_t d,
                  const float* query, const int32_t* ids, size_t n,
                  double* out, int32_t first_id) {
  if (n == 0) return;
  const double qnorm2 = QueryNorm2(metric, query, d);
  auto row_ptr = [&](size_t i) {
    const auto id = ids ? ids[i] : first_id + static_cast<int32_t>(i);
    return data + static_cast<size_t>(id) * d;
  };
  const float* rows[kGroup];
  for (size_t i = 0; i < n; i += kGroup) {
    const size_t g = std::min(kGroup, n - i);
    for (size_t r = 0; r < g; ++r) rows[r] = row_ptr(i + r);
    for (size_t r = 0; r < kGroup && i + g + r < n; ++r) {
      PrefetchRow(row_ptr(i + g + r), d);
    }
    DistanceGroup(metric, rows, g, query, d, qnorm2, out + i);
  }
}

void DistanceScatter(Metric metric, const float* data, size_t d,
                     const float* query, const int32_t* ids,
                     const int32_t* slots, size_t n, double* out) {
  if (n == 0) return;
  const double qnorm2 = QueryNorm2(metric, query, d);
  const float* rows[kGroup];
  double dist[kGroup];
  for (size_t i = 0; i < n; i += kGroup) {
    const size_t g = std::min(kGroup, n - i);
    for (size_t r = 0; r < g; ++r) {
      rows[r] = data + static_cast<size_t>(ids[i + r]) * d;
    }
    for (size_t r = 0; r < kGroup && i + g + r < n; ++r) {
      PrefetchRow(data + static_cast<size_t>(ids[i + g + r]) * d, d);
    }
    DistanceGroup(metric, rows, g, query, d, qnorm2, dist);
    for (size_t r = 0; r < g; ++r) {
      out[slots[i + r]] = dist[r];
    }
  }
}

void VerifyCandidates(Metric metric, const float* data, size_t d,
                      const float* query, const int32_t* ids, size_t n,
                      TopK& topk, int32_t first_id, const uint8_t* deleted) {
  if (n == 0) return;
  if (deleted != nullptr) {
    // Compact the surviving ids into fixed-size chunks and recurse without
    // the filter. Order is preserved, so the grouped kernels see survivors
    // exactly as an unfiltered call over a tombstone-free candidate list
    // would — distances and tie-breaks stay bit-identical.
    int32_t live[256];
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      const int32_t id = ids ? ids[i] : first_id + static_cast<int32_t>(i);
      if (deleted[id]) continue;
      live[count++] = id;
      if (count == sizeof(live) / sizeof(live[0])) {
        VerifyCandidates(metric, data, d, query, live, count, topk);
        count = 0;
      }
    }
    VerifyCandidates(metric, data, d, query, live, count, topk);
    return;
  }
  const double qnorm2 = QueryNorm2(metric, query, d);
  auto row_id = [&](size_t i) {
    return ids ? ids[i] : first_id + static_cast<int32_t>(i);
  };
  const float* rows[kGroup];
  int32_t gid[kGroup];
  double dist[kGroup];
  for (size_t i = 0; i < n; i += kGroup) {
    const size_t g = std::min(kGroup, n - i);
    for (size_t r = 0; r < g; ++r) {
      gid[r] = row_id(i + r);
      rows[r] = data + static_cast<size_t>(gid[r]) * d;
    }
    for (size_t r = 0; r < kGroup && i + g + r < n; ++r) {
      PrefetchRow(data + static_cast<size_t>(row_id(i + g + r)) * d, d);
    }
    DistanceGroup(metric, rows, g, query, d, qnorm2, dist);
    // Pushes happen in candidate order, so ties resolve exactly as the old
    // one-Distance-call-per-candidate loops did.
    for (size_t r = 0; r < g; ++r) topk.Push(gid[r], dist[r]);
  }
}

}  // namespace util
}  // namespace lccs
