#include "util/matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace lccs {
namespace util {

size_t Matrix::CheckedElements(size_t rows, size_t cols) {
  if (cols != 0 && rows > std::numeric_limits<size_t>::max() / cols) {
    throw std::runtime_error("Matrix dimensions overflow: " +
                             std::to_string(rows) + " x " +
                             std::to_string(cols));
  }
  return rows * cols;
}

void Matrix::Resize(size_t rows, size_t cols) {
  data_.assign(CheckedElements(rows, cols), 0.0f);
  rows_ = rows;
  cols_ = cols;
}

void Matrix::MatVec(const float* x, float* y) const {
  for (size_t i = 0; i < rows_; ++i) {
    y[i] = static_cast<float>(Dot(Row(i), x, cols_));
  }
}

double Dot(const float* a, const float* b, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

double SquaredL2(const float* a, const float* b, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    s += diff * diff;
  }
  return s;
}

double L2(const float* a, const float* b, size_t d) {
  return std::sqrt(SquaredL2(a, b, d));
}

double Norm(const float* a, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) s += static_cast<double>(a[i]) * a[i];
  return std::sqrt(s);
}

double AngularDistance(const float* a, const float* b, size_t d) {
  const double na = Norm(a, d);
  const double nb = Norm(b, d);
  if (na == 0.0 || nb == 0.0) return 0.0;
  double cosine = Dot(a, b, d) / (na * nb);
  cosine = std::clamp(cosine, -1.0, 1.0);
  return std::acos(cosine);
}

void NormalizeInPlace(float* a, size_t d) {
  const double n = Norm(a, d);
  if (n == 0.0) return;
  const float inv = static_cast<float>(1.0 / n);
  for (size_t i = 0; i < d; ++i) a[i] *= inv;
}

}  // namespace util
}  // namespace lccs
