#ifndef LCCS_UTIL_STATS_H_
#define LCCS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace lccs {
namespace util {

/// Statistical special functions used by the LSH collision-probability
/// formulas (Eq. (2) of the paper), the SRS early-termination test, and the
/// extreme-value theory of Section 5.

/// Standard normal CDF Φ(x).
double NormalCdf(double x);

/// Standard normal PDF φ(x).
double NormalPdf(double x);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over (0,1)).
double NormalQuantile(double p);

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a).
/// Series expansion for x < a + 1, continued fraction otherwise.
double RegularizedGammaP(double a, double x);

/// CDF of a chi-squared distribution with `dof` degrees of freedom.
double ChiSquaredCdf(double x, int dof);

/// Quantile of chi-squared with `dof` degrees of freedom (bisection on CDF).
double ChiSquaredQuantile(double p, int dof);

/// Simple accumulator for mean / variance / extrema of a stream of doubles.
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` (copies + nth_element).
double Quantile(std::vector<double> values, double q);

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_STATS_H_
