#ifndef LCCS_UTIL_METRIC_H_
#define LCCS_UTIL_METRIC_H_

#include <cstddef>
#include <string>

#include "util/matrix.h"

namespace lccs {
namespace util {

/// Distance metrics supported by the library. LCCS-LSH itself is
/// LSH-family-independent (Section 2.1); the metric only selects the hash
/// family and the verification distance.
enum class Metric {
  kEuclidean,  ///< ||a - b||_2
  kAngular,    ///< arccos(a·b / |a||b|)
  kHamming,    ///< number of differing 0/1 coordinates
  kJaccard,    ///< 1 - |A ∩ B| / |A ∪ B| over 0/1 set indicators
};

inline double Distance(Metric metric, const float* a, const float* b,
                       size_t d) {
  switch (metric) {
    case Metric::kEuclidean:
      return L2(a, b, d);
    case Metric::kAngular:
      return AngularDistance(a, b, d);
    case Metric::kHamming: {
      size_t diff = 0;
      for (size_t i = 0; i < d; ++i) {
        const bool ba = a[i] >= 0.5f;
        const bool bb = b[i] >= 0.5f;
        diff += (ba != bb) ? 1 : 0;
      }
      return static_cast<double>(diff);
    }
    case Metric::kJaccard: {
      size_t inter = 0, uni = 0;
      for (size_t i = 0; i < d; ++i) {
        const bool ba = a[i] >= 0.5f;
        const bool bb = b[i] >= 0.5f;
        inter += (ba && bb) ? 1 : 0;
        uni += (ba || bb) ? 1 : 0;
      }
      if (uni == 0) return 0.0;  // two empty sets are identical
      return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
    }
  }
  return 0.0;
}

inline std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kAngular:
      return "angular";
    case Metric::kHamming:
      return "hamming";
    case Metric::kJaccard:
      return "jaccard";
  }
  return "unknown";
}

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_METRIC_H_
