#ifndef LCCS_UTIL_METRIC_H_
#define LCCS_UTIL_METRIC_H_

#include <cstddef>
#include <string>

namespace lccs {
namespace util {

/// Distance metrics supported by the library. LCCS-LSH itself is
/// LSH-family-independent (Section 2.1); the metric only selects the hash
/// family and the verification distance.
enum class Metric {
  kEuclidean,  ///< ||a - b||_2
  kAngular,    ///< arccos(a·b / |a||b|)
  kHamming,    ///< number of differing 0/1 coordinates
  kJaccard,    ///< 1 - |A ∩ B| / |A ∪ B| over 0/1 set indicators
};

/// Interprets a float coordinate of a binary (Hamming/Jaccard/bit-sampling)
/// vector as a set-membership bit. The single source of truth for the 0.5
/// threshold used across metrics and hash families.
inline bool IsSetCoordinate(float v) { return v >= 0.5f; }

/// Verification distance between two d-dimensional vectors under `metric`.
/// Dispatches to the runtime-selected SIMD kernels (see simd_distance.h):
/// AVX2+FMA when the CPU supports it, scalar reference otherwise. Every
/// distance in the process goes through the same tier, so query paths,
/// batched verification, and ground truth agree bit-for-bit.
double Distance(Metric metric, const float* a, const float* b, size_t d);

inline std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kAngular:
      return "angular";
    case Metric::kHamming:
      return "hamming";
    case Metric::kJaccard:
      return "jaccard";
  }
  return "unknown";
}

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_METRIC_H_
