#ifndef LCCS_UTIL_THREAD_POOL_H_
#define LCCS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace lccs {
namespace util {

/// Lazily-initialized persistent work-stealing thread pool. Workers are
/// spawned once (on first use) and live for the process, so small parallel
/// batches stop paying std::thread creation/join latency on every call —
/// the old ParallelFor spawned fresh threads per invocation, which dominated
/// AnnIndex::QueryBatch at batch sizes 1–64.
///
/// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
/// steals FIFO from the other workers when idle. Submitting threads also
/// participate: ParallelRange runs chunks on the caller and lets it steal
/// until the range completes, so progress never depends on pool capacity
/// (the pool works even with a single hardware thread).
///
/// Worker count defaults to std::thread::hardware_concurrency() and can be
/// pinned with the LCCS_POOL_WORKERS environment variable (read once, at
/// first use).
class ThreadPool {
 public:
  /// The process-wide pool. Constructed on first call.
  static ThreadPool& Instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  size_t num_workers() const { return workers_.size(); }

  /// Chunked-range submit: splits [0, n) into min(parallelism, n) balanced
  /// contiguous chunks (sizes differ by at most one — no empty tail ranges)
  /// and runs fn(begin, end) once per chunk. The caller executes chunks too,
  /// so at most `parallelism` threads touch the range at once;
  /// parallelism == 0 means workers + caller. Blocks until every chunk has
  /// finished. Calls from inside a pool task run fn(0, n) inline — nested
  /// parallelism never deadlocks, it just serializes. If fn throws, the
  /// range still runs to completion and the first exception is rethrown to
  /// the caller once no chunk references it anymore.
  void ParallelRange(size_t n, size_t parallelism,
                     const std::function<void(size_t, size_t)>& fn);

  /// Fire-and-forget task submission (round-robin across worker deques).
  /// Building block for long-lived request serving on top of the pool.
  /// Tasks must not block indefinitely: a thread helping a ParallelRange
  /// drain can steal any queued task, so a blocking task would stall that
  /// caller (and occupies a worker either way). Queue work, don't park in
  /// it. No execution guarantee at shutdown — tasks still queued when the
  /// pool is destroyed (process exit) are dropped; a task that throws on a
  /// worker terminates the process (std::thread semantics), one that
  /// throws while stolen by a helping caller surfaces there.
  void Submit(std::function<void()> task);

 private:
  struct Worker;

  explicit ThreadPool(size_t num_workers);
  void WorkerLoop(size_t index);
  /// Enqueues one task, round-robin across worker deques, and wakes the
  /// target worker.
  void PushTask(std::function<void()> task);
  /// Pops one task — the home deque first (LIFO), then steals from the
  /// other deques (FIFO) — and runs it. Returns false if every deque was
  /// empty.
  bool RunOneTask(size_t home_index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_submit_{0};
};

/// Runs fn(begin, end) over [0, n) split into contiguous chunks across up to
/// `num_threads` threads of the persistent pool (hardware concurrency when
/// 0). Thin wrapper over ThreadPool::ParallelRange — same signature as the
/// old spawn-per-call implementation, so the embarrassingly parallel offline
/// work (ground-truth computation, bulk hashing) and the batched query
/// engine (AnnIndex::QueryBatch) speed up without caller changes. Per-query
/// latency figures in the paper remain single-thread: sequential Query calls
/// never go through here.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 size_t num_threads = 0);

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_THREAD_POOL_H_
