#ifndef LCCS_UTIL_THREAD_POOL_H_
#define LCCS_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace lccs {
namespace util {

/// Runs fn(begin, end) over [0, n) split into contiguous chunks across
/// `num_threads` std::threads (hardware concurrency when 0). Backs both the
/// embarrassingly parallel offline work (ground-truth computation, bulk
/// hashing) and the batched query engine (AnnIndex::QueryBatch). Per-query
/// latency figures in the paper remain single-thread: sequential Query calls
/// never go through here.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 size_t num_threads = 0);

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_THREAD_POOL_H_
