#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace lccs {
namespace util {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

namespace {

// std::lgamma writes the global `signgam` on glibc, which is a (benign but
// TSAN-reported) data race when queries evaluate chi-squared CDFs on
// several threads. The reentrant lgamma_r keeps the sign in a local.
double LogGamma(double a) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(a, &sign);
#else
  return std::lgamma(a);
#endif
}

// Series representation of P(a, x), valid for x < a + 1.
double GammaPSeries(double a, double x) {
  const double gln = LogGamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued-fraction representation of Q(a, x) = 1 - P(a, x), for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double gln = LogGamma(a);
  const double kFpMin = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquaredCdf(double x, int dof) {
  assert(dof > 0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * dof, 0.5 * x);
}

double ChiSquaredQuantile(double p, int dof) {
  assert(p >= 0.0 && p < 1.0);
  if (p <= 0.0) return 0.0;
  double lo = 0.0;
  double hi = std::max(1.0, dof + 10.0 * std::sqrt(2.0 * dof));
  while (ChiSquaredCdf(hi, dof) < p) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (ChiSquaredCdf(mid, dof) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  return std::max(0.0, sum_sq_ / n - m * m);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  assert(q >= 0.0 && q <= 1.0);
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  std::nth_element(values.begin(), values.begin() + lo, values.end());
  const double vlo = values[lo];
  std::nth_element(values.begin(), values.begin() + hi, values.end());
  const double vhi = values[hi];
  const double frac = rank - static_cast<double>(lo);
  return vlo + (vhi - vlo) * frac;
}

}  // namespace util
}  // namespace lccs
