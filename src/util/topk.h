#ifndef LCCS_UTIL_TOPK_H_
#define LCCS_UTIL_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace lccs {
namespace util {

/// A single (id, distance) answer of a nearest-neighbor query.
struct Neighbor {
  int32_t id = -1;
  double dist = 0.0;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;  // deterministic tie-break
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.dist == b.dist;
  }
};

/// Bounded max-heap keeping the k smallest-distance neighbors seen so far.
/// Used by every query path to collect verified candidates.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k + 1); }

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// Largest distance currently kept; +inf while not full.
  double Threshold() const {
    return full() ? heap_.front().dist
                  : std::numeric_limits<double>::infinity();
  }

  /// Offers a candidate; keeps it only if it beats the current threshold.
  void Push(int32_t id, double dist) {
    if (heap_.size() < k_) {
      heap_.push_back({id, dist});
      std::push_heap(heap_.begin(), heap_.end());
    } else if (k_ > 0 && dist < heap_.front().dist) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {id, dist};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Extracts the kept neighbors sorted by increasing distance.
  std::vector<Neighbor> Sorted() const {
    std::vector<Neighbor> out = heap_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;  // max-heap on dist
};

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_TOPK_H_
