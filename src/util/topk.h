#ifndef LCCS_UTIL_TOPK_H_
#define LCCS_UTIL_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace lccs {
namespace util {

/// A single (id, distance) answer of a nearest-neighbor query.
struct Neighbor {
  int32_t id = -1;
  double dist = 0.0;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;  // deterministic tie-break
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.dist == b.dist;
  }
};

/// Bounded max-heap keeping the k smallest-distance neighbors seen so far.
/// Used by every query path to collect verified candidates.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k + 1); }

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// Largest distance currently kept; +inf while not full.
  double Threshold() const {
    return full() ? heap_.front().dist
                  : std::numeric_limits<double>::infinity();
  }

  /// Offers a candidate; keeps it only if it beats the current threshold.
  void Push(int32_t id, double dist) {
    if (heap_.size() < k_) {
      heap_.push_back({id, dist});
      std::push_heap(heap_.begin(), heap_.end());
    } else if (k_ > 0 && dist < heap_.front().dist) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {id, dist};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Extracts the kept neighbors sorted by increasing distance.
  std::vector<Neighbor> Sorted() const {
    std::vector<Neighbor> out = heap_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;  // max-heap on dist
};

/// Merges S individually-sorted neighbor lists into the k best overall,
/// ordered by (distance, id) — the scatter/gather step of every sharded
/// query path (serve::ShardedIndex fans a query out to S shards and merges
/// the per-shard top-k lists with this). A loser-tree-style heap over the
/// list heads: O(m log S) for m emitted results, and ties are broken exactly
/// like Neighbor::operator<, so the merged ranking is identical to sorting
/// the concatenation.
inline std::vector<Neighbor> MergeSortedTopK(
    const std::vector<std::vector<Neighbor>>& lists, size_t k) {
  std::vector<Neighbor> merged;
  if (k == 0) return merged;
  if (lists.size() == 1) {
    merged = lists.front();
    if (merged.size() > k) merged.resize(k);
    return merged;
  }
  // Heap entries are (next neighbor, source list); the comparator inverts
  // Neighbor::operator< to make std::push_heap/pop_heap a min-heap.
  struct Head {
    Neighbor nb;
    size_t list = 0;
    size_t pos = 0;
  };
  const auto later = [](const Head& a, const Head& b) { return b.nb < a.nb; };
  std::vector<Head> heap;
  heap.reserve(lists.size());
  for (size_t s = 0; s < lists.size(); ++s) {
    if (!lists[s].empty()) heap.push_back({lists[s][0], s, 0});
  }
  std::make_heap(heap.begin(), heap.end(), later);
  size_t total = 0;
  for (const auto& list : lists) total += list.size();
  merged.reserve(std::min(k, total));
  while (!heap.empty() && merged.size() < k) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Head head = heap.back();
    heap.pop_back();
    merged.push_back(head.nb);
    if (++head.pos < lists[head.list].size()) {
      head.nb = lists[head.list][head.pos];
      heap.push_back(head);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return merged;
}

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_TOPK_H_
