#ifndef LCCS_UTIL_SIMD_DISTANCE_H_
#define LCCS_UTIL_SIMD_DISTANCE_H_

#include <cstddef>
#include <cstdint>

#include "util/metric.h"
#include "util/topk.h"

namespace lccs {
namespace util {

/// Instruction-set tier the distance kernels dispatch to at runtime. The
/// tier is detected once per process (CPUID) and can be pinned with the
/// LCCS_SIMD environment variable ("scalar" or "avx2"); requesting a tier
/// the CPU lacks silently falls back to scalar.
enum class SimdTier {
  kScalar,  ///< portable double-accumulator reference kernels
  kAvx2,    ///< AVX2 + FMA, 8 float lanes, masked tail loads
};

/// The tier every kernel in this header dispatches to. Cached after the
/// first call; all call sites in a process therefore agree bit-for-bit.
SimdTier ActiveSimdTier();

/// Human-readable tier name ("scalar" / "avx2").
const char* SimdTierName(SimdTier tier);

namespace simd {

/// Single-pair kernels. Same contracts as the scalar references in
/// matrix.h / the Hamming/Jaccard branches of util::Distance; the AVX2
/// versions accumulate in float lanes, so values may differ from the scalar
/// tier in the last bits (within 1e-5 relative — enforced by
/// tests/test_simd_distance.cc).
double SquaredL2(const float* a, const float* b, size_t d);
double L2(const float* a, const float* b, size_t d);
double Dot(const float* a, const float* b, size_t d);
double Angular(const float* a, const float* b, size_t d);
double Hamming(const float* a, const float* b, size_t d);
double Jaccard(const float* a, const float* b, size_t d);

/// Weighted dot product between a uint8 code row and an int16 weight vector
/// — the scoring primitive of the quantized candidate tier
/// (storage::QuantizedStore). The sum is an exact integer, so the scalar and
/// AVX2 tiers agree bit-for-bit (asserted by tests/test_quantized_store.cc);
/// the caller folds it into a float score with per-query constants.
///
/// Weights must satisfy |w| <= 4095 and d <= 8192: the AVX2 kernel
/// accumulates `madd_epi16` pairs in int32 lanes, and 255 * 4095 * 2 per
/// step times d/16 steps stays below 2^31 exactly up to that bound (the
/// QuantizedStore quantizes query weights into that range and refuses wider
/// dimensions).
int64_t DotCodesI8(const uint8_t* codes, const int16_t* weights, size_t d);

/// Tier-pinned variant for the bit-identity tests and microbenchmarks;
/// requesting kAvx2 on a CPU without it falls back to scalar.
int64_t DotCodesI8Tier(SimdTier tier, const uint8_t* codes,
                       const int16_t* weights, size_t d);

}  // namespace simd

/// Batched distances from `query` to `n` candidate rows of the row-major
/// matrix `data` (row stride `d`). Rows are scored matrix-at-a-time — four
/// rows per step with the next group prefetched — instead of one
/// util::Distance call per candidate. `ids == nullptr` means the contiguous
/// rows first_id .. first_id + n - 1. Each out[i] is bit-identical to
/// util::Distance(metric, data + ids[i] * d, query, d).
void DistanceMany(Metric metric, const float* data, size_t d,
                  const float* query, const int32_t* ids, size_t n,
                  double* out, int32_t first_id = 0);

/// Scatter-form DistanceMany for the cross-query batch engine: scores the
/// `n` rows `ids[i]` against `query` and writes each distance to
/// out[slots[i]] instead of out[i]. `ids` may be any subsequence of a
/// query's candidate list (the batch engine walks candidates in row-id
/// blocks), and because every distance is bit-identical to a standalone
/// util::Distance call, the scattered values are exactly what DistanceMany
/// would have produced at those slots in any other order.
void DistanceScatter(Metric metric, const float* data, size_t d,
                     const float* query, const int32_t* ids,
                     const int32_t* slots, size_t n, double* out);

/// Batched candidate verification: scores candidates as DistanceMany and
/// pushes (id, distance) into `topk` in candidate order — drop-in for the
/// per-candidate Push loops that previously dominated query time.
///
/// `deleted`, when non-null, is a tombstone bitmap indexed by candidate id:
/// candidates with deleted[id] != 0 are dropped before scoring, so they
/// neither enter `topk` nor perturb its tie-breaking (surviving candidates
/// are offered in the same relative order as without the filter). This is
/// how every query path masks out rows removed from a core::DynamicIndex.
void VerifyCandidates(Metric metric, const float* data, size_t d,
                      const float* query, const int32_t* ids, size_t n,
                      TopK& topk, int32_t first_id = 0,
                      const uint8_t* deleted = nullptr);

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_SIMD_DISTANCE_H_
