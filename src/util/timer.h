#ifndef LCCS_UTIL_TIMER_H_
#define LCCS_UTIL_TIMER_H_

#include <chrono>

namespace lccs {
namespace util {

/// Wall-clock stopwatch. All timings reported by the benchmark harness come
/// from this class (steady_clock, so immune to NTP adjustments).
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace util
}  // namespace lccs

#endif  // LCCS_UTIL_TIMER_H_
