#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>

namespace lccs {
namespace util {

namespace {

// Set while a thread is executing a pool task (worker or helping caller).
// Nested ParallelRange calls from such a thread run inline instead of
// re-entering the pool, so nesting can never deadlock.
thread_local bool tl_in_pool_task = false;

struct ScopedInPoolTask {
  bool previous;
  ScopedInPoolTask() : previous(tl_in_pool_task) { tl_in_pool_task = true; }
  ~ScopedInPoolTask() { tl_in_pool_task = previous; }
};

size_t DefaultWorkerCount() {
  const char* env = std::getenv("LCCS_POOL_WORKERS");
  if (env != nullptr && *env != '\0') {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

struct ThreadPool::Worker {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> tasks;
};

ThreadPool& ThreadPool::Instance() {
  static ThreadPool pool(DefaultWorkerCount());
  return pool;
}

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->cv.notify_all();
  }
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::PushTask(std::function<void()> task) {
  const size_t w =
      next_submit_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  Worker& worker = *workers_[w];
  size_t backlog;
  {
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.tasks.push_back(std::move(task));
    backlog = worker.tasks.size();
  }
  worker.cv.notify_one();
  // The target already had work queued, so it may be busy for a while —
  // poke a peer so an idle worker rescans for steals now instead of at its
  // next backoff timeout.
  if (backlog > 1 && workers_.size() > 1) {
    workers_[(w + 1) % workers_.size()]->cv.notify_one();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  PushTask(std::move(task));
}

bool ThreadPool::RunOneTask(size_t home_index) {
  std::function<void()> task;
  {
    Worker& home = *workers_[home_index];
    std::lock_guard<std::mutex> lock(home.mu);
    if (!home.tasks.empty()) {
      task = std::move(home.tasks.back());
      home.tasks.pop_back();
    }
  }
  if (!task) {
    for (size_t offset = 1; offset < workers_.size() && !task; ++offset) {
      Worker& victim = *workers_[(home_index + offset) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  Worker& self = *workers_[index];
  std::chrono::milliseconds idle_wait(1);
  while (!stop_.load(std::memory_order_acquire)) {
    if (RunOneTask(index)) {
      idle_wait = std::chrono::milliseconds(1);
      continue;
    }
    // Nothing runnable anywhere right now. Sleep on the own queue's cv;
    // the timeout doubles as a periodic steal re-scan. Deliberately not a
    // predicated wait: PushTask pokes a peer's cv when a deque backs up,
    // and any wakeup — own push, peer poke, spurious — should fall through
    // to a full rescan. Exponential backoff keeps a long-idle pool at ~16
    // wakeups/s per worker instead of spinning at the re-scan interval,
    // while a busy pool still discovers stealable work within a
    // millisecond.
    {
      std::unique_lock<std::mutex> lock(self.mu);
      if (self.tasks.empty() && !stop_.load(std::memory_order_acquire)) {
        self.cv.wait_for(lock, idle_wait);
      }
    }
    idle_wait = std::min(idle_wait * 2, std::chrono::milliseconds(64));
  }
}

void ThreadPool::ParallelRange(size_t n, size_t parallelism,
                               const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (parallelism == 0) parallelism = workers_.size() + 1;  // + the caller
  const size_t chunks = std::min(parallelism, n);
  if (chunks <= 1 || tl_in_pool_task) {
    fn(0, n);
    return;
  }

  // Balanced contiguous bounds: chunk c covers [c*n/chunks, (c+1)*n/chunks),
  // so sizes differ by at most one — no empty tail ranges when n is barely
  // above the chunk count.
  auto chunk_begin = [n, chunks](size_t c) { return c * n / chunks; };

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
    std::exception_ptr error;  // first one wins
  } state;
  state.remaining = chunks - 1;

  auto record_error = [&state](std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.error) state.error = std::move(e);
  };

  // Chunk tasks never let an exception escape into a worker loop or a
  // stealing caller: the error is parked in the shared state and the chunk
  // still counts down, so the owning caller always reaches remaining == 0
  // before unwinding (the state and fn live on its stack).
  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = chunk_begin(c);
    const size_t end = chunk_begin(c + 1);
    PushTask([&fn, &state, &record_error, begin, end] {
      try {
        ScopedInPoolTask guard;
        fn(begin, end);
      } catch (...) {
        record_error(std::current_exception());
      }
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.remaining == 0) state.cv.notify_all();
    });
  }

  // The caller takes the first chunk, then helps drain the deques until the
  // whole range has completed — so the range finishes even if every worker
  // is busy elsewhere (or the pool has a single worker).
  try {
    ScopedInPoolTask guard;
    fn(0, chunk_begin(1));
  } catch (...) {
    record_error(std::current_exception());
  }
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      if (state.remaining == 0) break;
    }
    try {
      if (RunOneTask(0)) continue;
    } catch (...) {
      // A stolen foreign task (Submit) threw; our own chunks self-catch.
      // Surface it from here rather than losing the stack.
      record_error(std::current_exception());
      continue;
    }
    std::unique_lock<std::mutex> lock(state.mu);
    if (state.remaining == 0) break;
    // In-flight chunks are running on workers; wake on completion, with a
    // timeout to re-scan for newly stealable tasks.
    state.cv.wait_for(lock, std::chrono::milliseconds(1),
                      [&] { return state.remaining == 0; });
    if (state.remaining == 0) break;
  }
  if (state.error) std::rethrow_exception(state.error);
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  if (n == 1 || num_threads == 1) {
    fn(0, n);
    return;
  }
  ThreadPool::Instance().ParallelRange(n, num_threads, fn);
}

}  // namespace util
}  // namespace lccs
