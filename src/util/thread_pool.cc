#include "util/thread_pool.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace lccs {
namespace util {

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  size_t threads = num_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads == 1) {
    fn(0, n);
    return;
  }
  const size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace util
}  // namespace lccs
