#include "util/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace lccs {
namespace util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatBytes(size_t bytes) {
  const double b = static_cast<double>(bytes);
  char buf[64];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1024.0 * 1024.0));
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace util
}  // namespace lccs
