#include "storage/quantized_store.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "storage/flat_file.h"
#include "util/simd_distance.h"
#include "util/thread_pool.h"

namespace lccs {
namespace storage {

namespace {

constexpr char kCodebookMagic[8] = {'L', 'C', 'C', 'S', 'Q', 'N', 'T', '1'};

/// Largest quantized query weight magnitude — together with kMaxDim and the
/// uint8 codes this bounds the AVX2 int32 lane accumulation (see
/// util::simd::DotCodesI8).
constexpr double kMaxWeight = 4095.0;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void ReadPod(std::istream& in, T* value, const char* what) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in) throw std::runtime_error(std::string("truncated ") + what);
}

/// Same combine as the exact angular kernels (simd_distance.cc): the
/// quantized score only ranks candidates, but using the identical form
/// keeps the approximation error purely the quantization error.
inline float CombineAngularF(double dot, double norm2_a, double norm2_b) {
  if (norm2_a <= 0.0 || norm2_b <= 0.0) return 0.0f;
  double cosine = dot / (std::sqrt(norm2_a) * std::sqrt(norm2_b));
  cosine = std::clamp(cosine, -1.0, 1.0);
  return static_cast<float>(std::acos(cosine));
}

inline float Combine(const QuantizedStore::PreparedQuery& q, int64_t isum,
                     float term) {
  if (q.metric == util::Metric::kAngular) {
    const double dot =
        static_cast<double>(q.bias) +
        static_cast<double>(q.wscale) * static_cast<double>(isum);
    return CombineAngularF(dot, term, q.qnorm2);
  }
  return q.bias + q.wscale * static_cast<float>(isum) + term;
}

}  // namespace

QuantizedStore::Codebook QuantizedStore::TrainCodebook(
    const VectorStore& store) {
  const size_t d = store.cols();
  if (d > kMaxDim) {
    throw std::runtime_error("QuantizedStore: dimension " + std::to_string(d) +
                             " exceeds kMaxDim " + std::to_string(kMaxDim));
  }
  Codebook cb;
  cb.mins.assign(d, 0.0f);
  cb.scales.assign(d, 1.0f);
  if (store.empty()) return cb;
  std::vector<float> maxs(d, 0.0f);
  const float* row0 = store.Row(0);
  for (size_t j = 0; j < d; ++j) {
    cb.mins[j] = row0[j];
    maxs[j] = row0[j];
  }
  ScanRows(store, 1, store.rows(), [&](size_t i) {
    const float* row = store.Row(i);
    for (size_t j = 0; j < d; ++j) {
      cb.mins[j] = std::min(cb.mins[j], row[j]);
      maxs[j] = std::max(maxs[j], row[j]);
    }
  });
  for (size_t j = 0; j < d; ++j) {
    const float scale = (maxs[j] - cb.mins[j]) / 255.0f;
    // Constant dimensions quantize to code 0 under any positive scale; 1.0
    // keeps every downstream division well-defined.
    cb.scales[j] = (std::isfinite(scale) && scale > 0.0f) ? scale : 1.0f;
  }
  return cb;
}

QuantizedStore::QuantizedStore(const VectorStore& store, util::Metric metric,
                               Codebook codebook)
    : rows_(store.rows()),
      cols_(store.cols()),
      metric_(metric),
      codebook_(std::move(codebook)) {
  if (!SupportsMetric(metric)) {
    throw std::runtime_error("QuantizedStore: unsupported metric " +
                             util::MetricName(metric));
  }
  if (cols_ > kMaxDim) {
    throw std::runtime_error("QuantizedStore: dimension exceeds kMaxDim");
  }
  if (codebook_.mins.size() != cols_ || codebook_.scales.size() != cols_) {
    throw std::runtime_error("QuantizedStore: codebook dimension mismatch");
  }
  codes_.resize(rows_ * cols_);
  terms_.resize(rows_);
  util::ParallelFor(rows_, [&](size_t begin, size_t end) {
    ScanRows(store, begin, end, [&](size_t i) {
      EncodeRow(store.Row(i), codes_.data() + i * cols_, &terms_[i]);
    });
  });
}

std::shared_ptr<const QuantizedStore> QuantizedStore::Build(
    const VectorStore& store, util::Metric metric) {
  if (store.empty() || !SupportsMetric(metric) || store.cols() > kMaxDim) {
    return nullptr;
  }
  return std::make_shared<const QuantizedStore>(store, metric,
                                                TrainCodebook(store));
}

void QuantizedStore::EncodeRow(const float* row, uint8_t* codes,
                               float* term) const {
  // Double arithmetic + lround keeps encoding deterministic across call
  // sites (bulk build, delta inserts, post-deserialization re-encode).
  double acc = 0.0;
  for (size_t j = 0; j < cols_; ++j) {
    const double s = static_cast<double>(codebook_.scales[j]);
    const double v =
        (static_cast<double>(row[j]) - static_cast<double>(codebook_.mins[j])) /
        s;
    const long code = std::lround(std::clamp(v, 0.0, 255.0));
    codes[j] = static_cast<uint8_t>(code);
    if (metric_ == util::Metric::kAngular) {
      // ||x̂||² for the angular combine.
      const double xj =
          static_cast<double>(codebook_.mins[j]) + s * static_cast<double>(code);
      acc += xj * xj;
    } else {
      // Σ (s_j c_j)² — the row-dependent term of the expanded ||q - x̂||².
      const double sc = s * static_cast<double>(code);
      acc += sc * sc;
    }
  }
  *term = static_cast<float>(acc);
}

QuantizedStore::PreparedQuery QuantizedStore::Prepare(
    const float* query) const {
  PreparedQuery q;
  q.metric = metric_;
  q.weights.resize(cols_);
  std::vector<double> w(cols_);
  double bias = 0.0;
  double qnorm2 = 0.0;
  double maxw = 0.0;
  for (size_t j = 0; j < cols_; ++j) {
    const double qj = static_cast<double>(query[j]);
    const double s = static_cast<double>(codebook_.scales[j]);
    const double m = static_cast<double>(codebook_.mins[j]);
    if (metric_ == util::Metric::kAngular) {
      // q · x̂ = Σ q_j min_j + Σ (q_j s_j) c_j
      w[j] = qj * s;
      bias += qj * m;
      qnorm2 += qj * qj;
    } else {
      // ||q - x̂||² = Σ(q_j - min_j)² - 2 Σ(q_j - min_j) s_j c_j + Σ(s_j c_j)²
      const double qm = qj - m;
      w[j] = qm * s;
      bias += qm * qm;
    }
    maxw = std::max(maxw, std::abs(w[j]));
  }
  const double sw = maxw > 0.0 ? maxw / kMaxWeight : 1.0;
  for (size_t j = 0; j < cols_; ++j) {
    const long ww = std::lround(w[j] / sw);
    q.weights[j] = static_cast<int16_t>(
        std::clamp(ww, -static_cast<long>(kMaxWeight),
                   static_cast<long>(kMaxWeight)));
  }
  if (metric_ == util::Metric::kAngular) {
    q.wscale = static_cast<float>(sw);
    q.bias = static_cast<float>(bias);
    q.qnorm2 = static_cast<float>(qnorm2);
  } else {
    q.wscale = static_cast<float>(-2.0 * sw);
    q.bias = static_cast<float>(bias);
  }
  return q;
}

void QuantizedStore::ScoreCandidates(const PreparedQuery& q,
                                     const int32_t* ids, size_t n,
                                     size_t row_offset, float* out) const {
  const int16_t* weights = q.weights.data();
  if (ids != nullptr) {
    // Gathered candidates land all over the code block (1 byte/dim keeps a
    // row to 1-2 cache lines, but a paper-scale block far exceeds LLC), and
    // each row costs another miss in terms_. The dot product is ~30ns — far
    // cheaper than a serialized DRAM miss — so the loop is software-
    // pipelined one block at a time: while block i is scored, block i+1's
    // code rows and terms are prefetched. Scoring a block takes long enough
    // to cover a full DRAM round-trip, and a block's worth of lines never
    // overruns the core's miss-handling queues the way prefetching the
    // whole candidate list up front would.
    constexpr size_t kBlock = 16;
    const auto prefetch_block = [&](size_t begin) {
      const size_t end = std::min(begin + kBlock, n);
      for (size_t i = begin; i < end; ++i) {
        const size_t row = row_offset + static_cast<size_t>(ids[i]);
        const uint8_t* codes = Codes(row);
        for (size_t off = 0; off < cols_; off += 64) {
          __builtin_prefetch(codes + off, 0, 1);
        }
        __builtin_prefetch(terms_.data() + row, 0, 1);
      }
    };
    prefetch_block(0);
    for (size_t base = 0; base < n; base += kBlock) {
      prefetch_block(base + kBlock);
      const size_t end = std::min(base + kBlock, n);
      for (size_t i = base; i < end; ++i) {
        const size_t row = row_offset + static_cast<size_t>(ids[i]);
        const int64_t isum =
            util::simd::DotCodesI8(Codes(row), weights, cols_);
        out[i] = Combine(q, isum, terms_[row]);
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t row = row_offset + i;
    const int64_t isum =
        util::simd::DotCodesI8(Codes(row), weights, cols_);
    out[i] = Combine(q, isum, terms_[row]);
  }
}

float QuantizedStore::ScoreCodes(const PreparedQuery& q, const uint8_t* codes,
                                 float term) const {
  const int64_t isum = util::simd::DotCodesI8(codes, q.weights.data(), cols_);
  return Combine(q, isum, term);
}

void QuantizedStore::SerializeCodebook(std::ostream& out) const {
  out.write(kCodebookMagic, sizeof(kCodebookMagic));
  const uint32_t metric = static_cast<uint32_t>(metric_);
  const uint64_t cols = cols_;
  WritePod(out, metric);
  WritePod(out, cols);
  out.write(reinterpret_cast<const char*>(codebook_.mins.data()),
            cols_ * sizeof(float));
  out.write(reinterpret_cast<const char*>(codebook_.scales.data()),
            cols_ * sizeof(float));
  FnvChecksum checksum;
  checksum.Update(&metric, sizeof(metric));
  checksum.Update(&cols, sizeof(cols));
  checksum.Update(codebook_.mins.data(), cols_ * sizeof(float));
  checksum.Update(codebook_.scales.data(), cols_ * sizeof(float));
  const uint64_t digest = checksum.Digest();
  WritePod(out, digest);
}

QuantizedStore::Codebook QuantizedStore::DeserializeCodebook(
    std::istream& in, size_t expected_cols) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCodebookMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("quantized codebook: bad magic");
  }
  uint32_t metric = 0;
  uint64_t cols = 0;
  ReadPod(in, &metric, "quantized codebook metric");
  ReadPod(in, &cols, "quantized codebook cols");
  if (metric != static_cast<uint32_t>(util::Metric::kEuclidean) &&
      metric != static_cast<uint32_t>(util::Metric::kAngular)) {
    throw std::runtime_error("quantized codebook: unsupported metric tag " +
                             std::to_string(metric));
  }
  // cols is validated against the caller's store *before* the allocation,
  // so a corrupt header can never drive the resize (no bad_alloc path).
  if (cols != expected_cols || cols > kMaxDim) {
    throw std::runtime_error("quantized codebook: dimension " +
                             std::to_string(cols) + " does not match store (" +
                             std::to_string(expected_cols) + ")");
  }
  Codebook cb;
  cb.mins.resize(cols);
  cb.scales.resize(cols);
  in.read(reinterpret_cast<char*>(cb.mins.data()), cols * sizeof(float));
  in.read(reinterpret_cast<char*>(cb.scales.data()), cols * sizeof(float));
  if (!in) throw std::runtime_error("truncated quantized codebook");
  uint64_t stored_digest = 0;
  ReadPod(in, &stored_digest, "quantized codebook checksum");
  FnvChecksum checksum;
  checksum.Update(&metric, sizeof(metric));
  checksum.Update(&cols, sizeof(cols));
  checksum.Update(cb.mins.data(), cols * sizeof(float));
  checksum.Update(cb.scales.data(), cols * sizeof(float));
  if (checksum.Digest() != stored_digest) {
    throw std::runtime_error("quantized codebook: checksum mismatch");
  }
  for (size_t j = 0; j < cols; ++j) {
    if (!std::isfinite(cb.mins[j]) || !std::isfinite(cb.scales[j]) ||
        cb.scales[j] <= 0.0f) {
      throw std::runtime_error(
          "quantized codebook: non-finite or non-positive entry at dim " +
          std::to_string(j));
    }
  }
  return cb;
}

// --- Serving policy knobs ----------------------------------------------------

namespace {

// 0 = unset (consult the environment on first use).
std::atomic<double> g_overfetch{0.0};
// -1 = follow the environment; 0/1 = forced off/on (tests, benchmarks).
std::atomic<int> g_quantized_mode{-1};

// Default keep factor k' = 2k. At paper scale (1e6 Gaussian rows, d=128,
// λ=128) the int8 prune's top-2k contains the exact top-k every time even
// at overfetch 1.5; 2.0 buys slack for harder data while keeping the
// rerank's per-row pread cost (the dominant serve-time overhead of the
// quantized tier) at 2k syscalls per query.
constexpr double kDefaultOverfetch = 2.0;

double OverfetchFromEnv() {
  const char* env = std::getenv("LCCS_RERANK_OVERFETCH");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && std::isfinite(v) && v >= 1.0) return v;
  }
  return kDefaultOverfetch;
}

}  // namespace

double RerankOverfetch() {
  double v = g_overfetch.load(std::memory_order_relaxed);
  if (v <= 0.0) {
    v = OverfetchFromEnv();
    g_overfetch.store(v, std::memory_order_relaxed);
  }
  return v;
}

void SetRerankOverfetch(double overfetch) {
  // Anything below 1 (canonically 0) clears the override, so the next read
  // consults LCCS_RERANK_OVERFETCH / the default again.
  g_overfetch.store(
      std::isfinite(overfetch) && overfetch >= 1.0 ? overfetch : 0.0,
      std::memory_order_relaxed);
}

size_t RerankKeep(size_t k) {
  const double keep = std::ceil(static_cast<double>(k) * RerankOverfetch());
  return std::max(k, static_cast<size_t>(keep));
}

bool QuantizedServingEnabled() {
  const int mode = g_quantized_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  const char* env = std::getenv("LCCS_QUANTIZED");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
    return false;
  }
  return true;
}

void SetQuantizedServing(int mode) {
  g_quantized_mode.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                         std::memory_order_relaxed);
}

const QuantizedStore* EnsureQuantized(
    const std::shared_ptr<const VectorStore>& store, util::Metric metric) {
  if (store == nullptr || store->empty() ||
      !QuantizedStore::SupportsMetric(metric) ||
      store->cols() > QuantizedStore::kMaxDim) {
    return nullptr;
  }
  size_t offset = 0;
  if (const QuantizedStore* existing = store->Quantized(&offset)) {
    return existing;
  }
  std::shared_ptr<const QuantizedStore> built =
      QuantizedStore::Build(*store, metric);
  if (built == nullptr) return nullptr;
  // First-wins: a racing EnsureQuantized may have attached in the meantime;
  // AttachQuantized returns whichever sibling actually stuck.
  return store->AttachQuantized(std::move(built));
}

const QuantizedStore* ActiveQuantized(const VectorStore* store,
                                      util::Metric metric,
                                      size_t* row_offset) {
  if (store == nullptr || !QuantizedServingEnabled()) return nullptr;
  const QuantizedStore* q = store->Quantized(row_offset);
  if (q == nullptr || q->metric() != metric || q->cols() != store->cols()) {
    return nullptr;
  }
  return q;
}

void ExactRerank(const VectorStore& store, util::Metric metric,
                 const float* query, const int32_t* ids, size_t n,
                 util::TopK& topk) {
  if (n == 0) return;
  if (!store.PrefersCopyGather()) {
    store.PrefetchRows(ids, n);
    util::VerifyCandidates(metric, store.data(), store.cols(), query, ids, n,
                           topk);
    return;
  }
  // Copy path: gather the pruned rows into a reusable scratch block, verify
  // them there under scratch-local ids, and remap the survivors. Pruned ids
  // arrive ascending, so scratch order equals id order and tie-breaking is
  // unchanged.
  const size_t d = store.cols();
  thread_local std::vector<float> scratch;
  scratch.resize(n * d);
  store.ReadRowsInto(ids, n, scratch.data());
  util::TopK local(topk.k());
  util::VerifyCandidates(metric, scratch.data(), d, query, nullptr, n, local,
                         /*first_id=*/0);
  for (const util::Neighbor& nb : local.Sorted()) {
    topk.Push(ids[nb.id], nb.dist);
  }
}

std::vector<int32_t> RerankSelector::TakeAscendingIds() {
  std::vector<int32_t> ids;
  ids.reserve(heap_.size());
  while (!heap_.empty()) {
    ids.push_back(heap_.top().second);
    heap_.pop();
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace storage
}  // namespace lccs
