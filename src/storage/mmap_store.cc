#include "storage/mmap_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "storage/uring_reader.h"

namespace lccs {
namespace storage {

namespace {

/// Payload checksum via buffered preads — deliberately not through the map,
/// so validating a multi-GB file leaves the process RSS untouched.
uint64_t ChecksumPayload(int fd, uint64_t payload_bytes,
                         const std::string& path) {
  FnvChecksum checksum;
  std::vector<unsigned char> buffer(1 << 20);
  uint64_t offset = kFlatHeaderBytes;
  uint64_t remaining = payload_bytes;
  while (remaining > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(remaining, buffer.size()));
    const ssize_t got = ::pread(fd, buffer.data(), want,
                                static_cast<off_t>(offset));
    if (got <= 0) {
      throw std::runtime_error("flat file read error while checksumming: " +
                               path);
    }
    checksum.Update(buffer.data(), static_cast<size_t>(got));
    offset += static_cast<uint64_t>(got);
    remaining -= static_cast<uint64_t>(got);
  }
  return checksum.Digest();
}

}  // namespace

std::shared_ptr<MmapStore> MmapStore::Open(const std::string& path) {
  return Open(path, Options{});
}

std::shared_ptr<MmapStore> MmapStore::Open(const std::string& path,
                                           const Options& options) {
  const FlatHeader header = ReadFlatHeader(path);  // magic/version/size
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("cannot open flat file: " + path);
  }
  struct FdCloser {
    int fd;
    ~FdCloser() {
      if (fd >= 0) ::close(fd);
    }
  } closer{fd};

  const uint64_t payload_bytes =
      header.rows * header.cols * sizeof(float);  // validated by the header
  if (options.verify_checksum) {
    const uint64_t actual = ChecksumPayload(fd, payload_bytes, path);
    if (actual != header.checksum) {
      throw std::runtime_error(
          "flat file checksum mismatch (file modified since it was "
          "written?): " + path);
    }
  }

  // Map header + payload together; the store's view starts past the header
  // (40 bytes — float-aligned). PROT_READ: any write through the map is a
  // fault, never a silent corruption. The fd can close right after; the
  // mapping keeps the file referenced.
  const size_t map_bytes = static_cast<size_t>(kFlatHeaderBytes + payload_bytes);
  void* map = ::mmap(nullptr, map_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    throw std::runtime_error("mmap failed for " + path + ": " +
                             std::strerror(errno));
  }
  if (options.residency_budget_bytes > 0) {
    // Under a budget, scattered candidate reads must not be amplified by
    // fault-around (the kernel otherwise maps ~16 pages per fault, blowing
    // through the budget 16x faster than the clock ticks). Sequential
    // sweeps keep their read-ahead via the explicit WILLNEED advisories in
    // PrefetchRange.
    ::madvise(map, map_bytes, MADV_RANDOM);
  }
  auto store = std::shared_ptr<MmapStore>(
      new MmapStore(path, header, map, map_bytes, options));
  if (options.residency_budget_bytes > 0) {
    // The pread gather path (ReadRowsInto) needs the fd past Open; without
    // a budget the mapping alone references the file and the fd can close.
    store->fd_ = closer.fd;
    closer.fd = -1;
  }
  return store;
}

MmapStore::MmapStore(std::string path, FlatHeader header, void* map,
                     size_t map_bytes, Options options)
    : path_(std::move(path)),
      header_(header),
      map_(map),
      map_bytes_(map_bytes),
      options_(options) {
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page > 0) page_bytes_ = static_cast<size_t>(page);
  const auto* payload = reinterpret_cast<const float*>(
      static_cast<const char*>(map_) + kFlatHeaderBytes);
  SetView(payload, static_cast<size_t>(header_.rows),
          static_cast<size_t>(header_.cols));
}

MmapStore::~MmapStore() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  if (fd_ >= 0) ::close(fd_);
  if (options_.unlink_on_close) ::unlink(path_.c_str());
}

void MmapStore::ReadRowsInto(const int32_t* ids, size_t n, float* out) const {
  if (fd_ < 0) {
    VectorStore::ReadRowsInto(ids, n, out);
    return;
  }
  const size_t row_bytes = cols() * sizeof(float);
  // One ring submit for the whole gather when io_uring is available: at a
  // syscall each, per-row preads are the dominant serve-time cost of the
  // quantized rerank (~0.5-1us x k' rows per query). The pread loop below
  // stays as the fallback for kernels/sandboxes without io_uring and for
  // any segment the ring reported short.
  if (n >= 2) {
    if (UringReader* ring = UringReader::Get()) {
      thread_local std::vector<UringReader::Segment> segments;
      segments.resize(n);
      for (size_t i = 0; i < n; ++i) {
        segments[i].buf = out + i * cols();
        segments[i].off = static_cast<uint64_t>(
            kFlatHeaderBytes + static_cast<size_t>(ids[i]) * row_bytes);
        segments[i].len = static_cast<uint32_t>(row_bytes);
      }
      if (ring->ReadBatch(fd_, segments.data(), n)) return;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    char* dst = reinterpret_cast<char*>(out + i * cols());
    size_t got = 0;
    const off_t base = static_cast<off_t>(
        kFlatHeaderBytes + static_cast<size_t>(ids[i]) * row_bytes);
    while (got < row_bytes) {
      const ssize_t r = ::pread(fd_, dst + got, row_bytes - got,
                                base + static_cast<off_t>(got));
      if (r <= 0) {
        throw std::runtime_error("pread failed for " + path_ + ": " +
                                 (r < 0 ? std::strerror(errno) : "EOF"));
      }
      got += static_cast<size_t>(r);
    }
  }
}

void MmapStore::PrefetchRange(size_t begin, size_t n) const {
  if (n == 0 || empty()) return;
  // Page-aligned WILLNEED over the range: asynchronous read-ahead, the
  // difference between one major fault per page and streaming IO on a cold
  // file.
  const auto* start = reinterpret_cast<const char*>(Row(begin));
  const auto* end = reinterpret_cast<const char*>(Row(begin + n - 1)) +
                    cols() * sizeof(float);
  auto addr = reinterpret_cast<uintptr_t>(start);
  addr -= addr % static_cast<uintptr_t>(page_bytes_);
  ::madvise(reinterpret_cast<void*>(addr),
            static_cast<size_t>(reinterpret_cast<uintptr_t>(end) - addr),
            MADV_WILLNEED);
  NoteTouched(n);
}

void MmapStore::NoteTouched(size_t n) const {
  ChargeBytes(n * cols() * sizeof(float));
}

void MmapStore::NoteGather(size_t n) const {
  // A scattered candidate read occupies far more memory than it asks for:
  // the fault maps a whole page, and Linux's fault-around maps up to 16
  // surrounding *page-cache-resident* pages per fault (64 KB — its default
  // fault_around_bytes) without any IO, which MADV_RANDOM does not
  // suppress. Charge the clock what the kernel will actually map, or
  // residency outruns the budget 16x (measured: ~8 MB mapped per
  // 137-candidate query against a hot file, exactly 16 pages per row).
  constexpr size_t kFaultAroundBytes = size_t{64} << 10;
  const size_t row_bytes = cols() * sizeof(float);
  const size_t per_row =
      row_bytes > kFaultAroundBytes ? row_bytes : kFaultAroundBytes;
  ChargeBytes(n * per_row);
}

void MmapStore::ChargeBytes(size_t bytes) const {
  if (options_.residency_budget_bytes == 0 || bytes == 0) return;
  const size_t total =
      touched_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (total >= options_.residency_budget_bytes) {
    std::lock_guard<std::mutex> lock(release_mutex_);
    // Re-check under the lock so a burst of threads crossing the budget
    // together issues one madvise, not one each. Only this
    // budget-triggered path re-checks — an explicit ReleaseResidency()
    // must drop unconditionally.
    if (touched_bytes_.load(std::memory_order_relaxed) >=
        options_.residency_budget_bytes) {
      DropLocked();
    }
  }
}

void MmapStore::ReleaseResidency() const {
  std::lock_guard<std::mutex> lock(release_mutex_);
  DropLocked();
}

void MmapStore::DropLocked() const {
  if (map_ != nullptr) {
    // Readers racing this simply refault the dropped pages from the page
    // cache; the mapping is read-only, so there is nothing to lose.
    ::madvise(map_, map_bytes_, MADV_DONTNEED);
  }
  touched_bytes_.store(0, std::memory_order_relaxed);
}

std::string MmapStore::DebugName() const {
  return "MmapStore(" + path_ + ", " + std::to_string(rows()) + "x" +
         std::to_string(cols()) + ")";
}

}  // namespace storage
}  // namespace lccs
