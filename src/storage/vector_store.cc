#include "storage/vector_store.h"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace lccs {
namespace storage {

namespace {

inline void PrefetchLine(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

}  // namespace

void VectorStore::PrefetchRows(const int32_t* ids, size_t n) const {
  if (empty()) return;
  if (ids == nullptr) {
    NoteTouched(n);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    PrefetchLine(Row(static_cast<size_t>(ids[i])));
  }
  NoteGather(n);
}

void VectorStore::PrefetchRange(size_t begin, size_t n) const {
  if (empty() || n == 0) return;
  // A sequential sweep is what hardware prefetchers handle best; priming the
  // first few rows covers the ramp-up, the rest streams.
  const size_t prime = n < 4 ? n : 4;
  for (size_t i = 0; i < prime; ++i) PrefetchLine(Row(begin + i));
  NoteTouched(n);
}

void VectorStore::ReadRowsInto(const int32_t* ids, size_t n,
                               float* out) const {
  const size_t row_bytes = cols() * sizeof(float);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out + i * cols(), Row(static_cast<size_t>(ids[i])),
                row_bytes);
  }
}

const QuantizedStore* VectorStore::AttachQuantized(
    std::shared_ptr<const QuantizedStore> quantized) const {
  std::lock_guard<std::mutex> lock(quantized_mu_);
  if (quantized_ == nullptr && quantized != nullptr) {
    quantized_ = std::move(quantized);
    quantized_raw_.store(quantized_.get(), std::memory_order_release);
  }
  return quantized_.get();
}

std::string InMemoryStore::DebugName() const {
  return "InMemoryStore(" + std::to_string(rows()) + "x" +
         std::to_string(cols()) + ")";
}

std::string BorrowedStore::DebugName() const {
  return "BorrowedStore(" + std::to_string(rows()) + "x" +
         std::to_string(cols()) + ")";
}

SliceStore::SliceStore(std::shared_ptr<const VectorStore> parent,
                       size_t first_row, size_t rows)
    : parent_(std::move(parent)), first_row_(first_row) {
  if (parent_ == nullptr) {
    throw std::runtime_error("SliceStore: null parent store");
  }
  if (first_row + rows < first_row ||  // overflow
      first_row + rows > parent_->rows()) {
    throw std::runtime_error("SliceStore: row range [" +
                             std::to_string(first_row) + ", " +
                             std::to_string(first_row + rows) +
                             ") exceeds parent with " +
                             std::to_string(parent_->rows()) + " rows");
  }
  SetView(rows > 0 ? parent_->Row(first_row) : parent_->data(), rows,
          parent_->cols());
}

void SliceStore::PrefetchRows(const int32_t* ids, size_t n) const {
  // Slice-local ids address the same contiguous bytes, so the generic
  // prefetch is correct; only the touch accounting must reach the parent.
  VectorStore::PrefetchRows(ids, n);
}

void SliceStore::PrefetchRange(size_t begin, size_t n) const {
  parent_->PrefetchRange(first_row_ + begin, n);
}

void SliceStore::ReadRowsInto(const int32_t* ids, size_t n,
                              float* out) const {
  if (first_row_ == 0) {
    parent_->ReadRowsInto(ids, n, out);
    return;
  }
  std::vector<int32_t> translated(n);
  for (size_t i = 0; i < n; ++i) {
    translated[i] = ids[i] + static_cast<int32_t>(first_row_);
  }
  parent_->ReadRowsInto(translated.data(), n, out);
}

const MmapStore* SliceStore::BackingMmap(size_t* row_offset) const {
  size_t parent_offset = 0;
  const MmapStore* backing = parent_->BackingMmap(&parent_offset);
  if (backing != nullptr && row_offset != nullptr) {
    *row_offset = parent_offset + first_row_;
  }
  return backing;
}

const QuantizedStore* SliceStore::Quantized(size_t* row_offset) const {
  // A sibling attached directly to the slice (rare) covers slice-local ids;
  // otherwise translate into a sibling attached to the parent, exactly as
  // BackingMmap translates row offsets.
  const QuantizedStore* own = VectorStore::Quantized(row_offset);
  if (own != nullptr) return own;
  size_t parent_offset = 0;
  const QuantizedStore* parent_q = parent_->Quantized(&parent_offset);
  if (parent_q != nullptr && row_offset != nullptr) {
    *row_offset = parent_offset + first_row_;
  }
  return parent_q;
}

std::shared_ptr<const QuantizedStore> SliceStore::QuantizedShared() const {
  std::shared_ptr<const QuantizedStore> own = VectorStore::QuantizedShared();
  if (own != nullptr) return own;
  return parent_->QuantizedShared();
}

std::string SliceStore::DebugName() const {
  return "SliceStore(" + std::to_string(first_row_) + "+" +
         std::to_string(rows()) + " of " + parent_->DebugName() + ")";
}

VectorStoreRef::VectorStoreRef(util::Matrix matrix)
    : owned_(std::make_shared<InMemoryStore>(std::move(matrix))) {
  store_ = owned_;
}

VectorStoreRef& VectorStoreRef::operator=(util::Matrix matrix) {
  owned_ = std::make_shared<InMemoryStore>(std::move(matrix));
  store_ = owned_;
  return *this;
}

InMemoryStore* VectorStoreRef::Own() {
  // use_count() == 2 means exactly the two internal aliases (store_ and
  // owned_): no other handle, index, or epoch is watching, so in-place
  // mutation cannot be observed.
  if (owned_ != nullptr && store_.use_count() == 2) return owned_.get();
  util::Matrix copy(rows(), cols());
  if (!empty()) {
    std::memcpy(copy.data(), data(), SizeBytes());
  }
  owned_ = std::make_shared<InMemoryStore>(std::move(copy));
  store_ = owned_;
  return owned_.get();
}

float* VectorStoreRef::Row(size_t i) { return Own()->MutableRow(i); }

float& VectorStoreRef::At(size_t i, size_t j) {
  return Own()->MutableRow(i)[j];
}

float* VectorStoreRef::MutableData() { return Own()->MutableData(); }

void VectorStoreRef::Resize(size_t rows, size_t cols) {
  owned_ = std::make_shared<InMemoryStore>(util::Matrix(rows, cols));
  store_ = owned_;
}

std::shared_ptr<const VectorStore> WrapBorrowed(const float* data, size_t rows,
                                                size_t cols) {
  return std::make_shared<BorrowedStore>(data, rows, cols);
}

}  // namespace storage
}  // namespace lccs
