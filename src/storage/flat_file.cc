#include "storage/flat_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace lccs {
namespace storage {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

std::function<void(const char*)>& FailpointHook() {
  static std::function<void(const char*)> hook;
  return hook;
}

void WriteOrThrow(std::FILE* f, const void* bytes, size_t n,
                  const std::string& path) {
  if (std::fwrite(bytes, 1, n, f) != n) {
    throw std::runtime_error("flat file write error: " + path);
  }
}

void WriteHeader(std::FILE* f, const FlatHeader& header, size_t cols,
                 const std::string& path) {
  WriteOrThrow(f, kFlatMagic, sizeof(kFlatMagic), path);
  const uint32_t version = kFlatVersion;
  const uint32_t endian = kFlatEndianTag;
  WriteOrThrow(f, &version, sizeof(version), path);
  WriteOrThrow(f, &endian, sizeof(endian), path);
  const uint64_t rows = header.rows;
  const uint64_t cols64 = cols;
  WriteOrThrow(f, &rows, sizeof(rows), path);
  WriteOrThrow(f, &cols64, sizeof(cols64), path);
  WriteOrThrow(f, &header.checksum, sizeof(header.checksum), path);
}

}  // namespace

void SetStorageFailpoint(std::function<void(const char*)> hook) {
  FailpointHook() = std::move(hook);
}

void StorageFailpoint(const char* site) {
  if (FailpointHook()) FailpointHook()(site);
}

void SyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    throw std::runtime_error("fsync failed: " + path);
  }
}

void FlushAndSyncFile(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    throw std::runtime_error("flush failed: " + path);
  }
  SyncFd(::fileno(file), path);
}

void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    throw std::runtime_error("cannot open directory for fsync: " + dir);
  }
  // Some filesystems refuse fsync on directory fds; a failed directory sync
  // still leaves the rename itself intact, so close before throwing.
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    throw std::runtime_error("directory fsync failed: " + dir);
  }
}

void PublishFile(const std::string& tmp_path, const std::string& final_path) {
  StorageFailpoint("publish:before_rename");
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp_path + " -> " +
                             final_path);
  }
  SyncParentDir(final_path);
}

void FnvChecksum::Update(const void* bytes, size_t n) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  uint64_t h = state_;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  state_ = h;
}

FlatFileWriter::FlatFileWriter(const std::string& path, size_t cols)
    : path_(path), tmp_path_(path + ".tmp"), cols_(cols) {
  if (cols == 0) {
    throw std::runtime_error("flat file needs cols >= 1: " + path);
  }
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open flat file for writing: " +
                             tmp_path_);
  }
  // Placeholder header; Finish() patches rows + checksum.
  try {
    WriteHeader(file_, FlatHeader{0, cols_, 0}, cols_, tmp_path_);
  } catch (...) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
    throw;
  }
}

FlatFileWriter::~FlatFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    // An unfinished stream has a lying header — never leave it around. The
    // final path was never created (only Finish's rename creates it).
    if (!finished_) std::remove(tmp_path_.c_str());
  }
}

void FlatFileWriter::AppendRow(const float* row) { AppendRows(row, 1); }

void FlatFileWriter::AppendRows(const float* rows, size_t n) {
  if (finished_) {
    throw std::runtime_error("flat file already finished: " + path_);
  }
  const size_t bytes = n * cols_ * sizeof(float);
  WriteOrThrow(file_, rows, bytes, tmp_path_);
  checksum_.Update(rows, bytes);
  rows_ += n;
}

FlatHeader FlatFileWriter::Finish() {
  if (finished_) {
    throw std::runtime_error("flat file finished twice: " + path_);
  }
  FlatHeader header{rows_, cols_, checksum_.Digest()};
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    throw std::runtime_error("flat file seek error: " + tmp_path_);
  }
  WriteHeader(file_, header, cols_, tmp_path_);
  // Flush + fsync *then* close unconditionally (a failed flush must not
  // leak the FILE*); only a fully durable temp file may be renamed onto the
  // target name, so a crash anywhere in this sequence leaves either the
  // complete file or nothing under `path_`.
  bool durable = false;
  try {
    FlushAndSyncFile(file_, tmp_path_);
    durable = true;
  } catch (...) {
  }
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!durable || !closed) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("flat file close error: " + tmp_path_);
  }
  try {
    PublishFile(tmp_path_, path_);
  } catch (...) {
    std::remove(tmp_path_.c_str());
    throw;
  }
  finished_ = true;
  return header;
}

FlatHeader WriteFlatFile(const std::string& path, const VectorStore& store) {
  FlatFileWriter writer(path, store.cols());
  // One fwrite per chunk of rows keeps syscall count low without a big
  // buffer; the store is contiguous, so chunks are free to form.
  const size_t chunk =
      store.cols() > 0 ? std::max<size_t>(1, 65536 / store.cols()) : 1;
  for (size_t row = 0; row < store.rows(); row += chunk) {
    const size_t n = std::min(chunk, store.rows() - row);
    writer.AppendRows(store.Row(row), n);
  }
  return writer.Finish();
}

FlatHeader WriteFlatFile(const std::string& path, const util::Matrix& matrix) {
  BorrowedStore view(matrix.data(), matrix.rows(), matrix.cols());
  return WriteFlatFile(path, view);
}

FlatHeader ReadFlatHeader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open flat file: " + path);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  char magic[sizeof(kFlatMagic)];
  uint32_t version = 0, endian = 0;
  FlatHeader header;
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::fread(&version, sizeof(version), 1, f) != 1 ||
      std::fread(&endian, sizeof(endian), 1, f) != 1 ||
      std::fread(&header.rows, sizeof(header.rows), 1, f) != 1 ||
      std::fread(&header.cols, sizeof(header.cols), 1, f) != 1 ||
      std::fread(&header.checksum, sizeof(header.checksum), 1, f) != 1) {
    throw std::runtime_error("flat file header truncated: " + path);
  }
  if (std::memcmp(magic, kFlatMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("not an LCCS flat vector file: " + path);
  }
  if (version != kFlatVersion) {
    throw std::runtime_error("unsupported flat file version " +
                             std::to_string(version) + ": " + path);
  }
  if (endian != kFlatEndianTag) {
    throw std::runtime_error(
        "flat file endianness does not match this machine: " + path);
  }
  if (header.cols == 0) {
    throw std::runtime_error("flat file with zero cols: " + path);
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    throw std::runtime_error("cannot stat flat file: " + path);
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  // Validate rows * cols * 4 against the payload without ever forming the
  // (overflowable) product: divide the payload by the row stride instead.
  const uint64_t row_bytes = header.cols * sizeof(float);
  bool size_ok = file_bytes >= kFlatHeaderBytes &&
                 header.cols <= file_bytes / sizeof(float);
  if (size_ok) {
    const uint64_t payload = file_bytes - kFlatHeaderBytes;
    size_ok = payload % row_bytes == 0 && payload / row_bytes == header.rows;
  }
  if (!size_ok) {
    throw std::runtime_error(
        "flat file size does not match its header (" +
        std::to_string(header.rows) + "x" + std::to_string(header.cols) +
        "): " + path);
  }
  return header;
}

}  // namespace storage
}  // namespace lccs
