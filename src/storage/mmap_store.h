#ifndef LCCS_STORAGE_MMAP_STORE_H_
#define LCCS_STORAGE_MMAP_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "storage/flat_file.h"
#include "storage/vector_store.h"

namespace lccs {
namespace storage {

/// Read-only memory-mapped VectorStore over an LCCS flat vector file
/// (storage/flat_file.h) — the DiskANN-style layout that lets paper-scale
/// (10^6+, Table 2) base sets be built over and served without ever being
/// heap-resident. The payload is mapped PROT_READ and handed out as the
/// store's contiguous base pointer, so every index and SIMD kernel runs on
/// it unchanged and bit-identically to an InMemoryStore of the same file.
///
/// **Open-time validation.** Open() rejects wrong magic / version /
/// endianness / size (via ReadFlatHeader) and, unless
/// Options::verify_checksum is off, re-computes the payload's FNV-1a 64
/// checksum with buffered preads — not through the map, so validation of a
/// huge file does not inflate the process RSS — and compares it against the
/// header. A file modified since it was produced (including one scribbled
/// over while another map of it was live) therefore fails at open instead
/// of silently serving wrong vectors. Writes to the file *after* a
/// successful Open are undefined behavior, as with any mapped file.
///
/// **Residency budget.** With Options::residency_budget_bytes > 0 the store
/// runs a coarse clock over the PrefetchRows/PrefetchRange/NoteTouched
/// advisories every verification batch and build sweep issues: once the
/// touched-byte counter crosses the budget, the whole mapping is dropped
/// with madvise(MADV_DONTNEED) (pages refault from the page cache / disk on
/// the next access) and the clock restarts. Peak RSS attributable to the
/// vectors stays around the budget plus the current working set — the
/// mechanism bench/disk_store measures. 0 disables the clock.
///
/// Thread safety: concurrent readers are safe, including against a
/// concurrent budget reset (a dropped page refaults transparently).
class MmapStore : public VectorStore {
 public:
  struct Options {
    /// Verify the payload checksum at open (full sequential read of the
    /// file, without touching the map). Disable only for files this
    /// process just wrote and fsynced itself.
    bool verify_checksum = true;
    /// Touched-bytes budget before the mapping is dropped; 0 = never drop.
    size_t residency_budget_bytes = 0;
    /// Unlink the file when the store is destroyed — how DynamicIndex's
    /// spill consolidation makes its temporary epoch files self-cleaning.
    bool unlink_on_close = false;
  };

  /// Opens and validates `path`. Throws std::runtime_error naming the
  /// problem (missing file, bad magic/version/endianness, size mismatch,
  /// checksum mismatch). (Two overloads rather than a defaulted Options
  /// argument: a default member initializer of a nested struct cannot be
  /// used as a default argument inside its own class.)
  static std::shared_ptr<MmapStore> Open(const std::string& path);
  static std::shared_ptr<MmapStore> Open(const std::string& path,
                                         const Options& options);

  ~MmapStore() override;

  MmapStore(const MmapStore&) = delete;
  MmapStore& operator=(const MmapStore&) = delete;

  const std::string& path() const { return path_; }
  const FlatHeader& header() const { return header_; }
  uint64_t checksum() const { return header_.checksum; }
  /// True when the file is a self-deleting temporary (spill epochs) — such
  /// a store must never be recorded by path in a saved index.
  bool unlink_on_close() const { return options_.unlink_on_close; }

  size_t ResidentBytes() const override { return 0; }
  void PrefetchRange(size_t begin, size_t n) const override;
  void NoteTouched(size_t n) const override;
  void NoteGather(size_t n) const override;
  /// Under a residency budget, scattered rerank rows must be copied, not
  /// faulted: an in-place gather maps a page per row (16 with fault-around)
  /// and advances the drop clock, serially re-faulting the working set.
  bool PrefersCopyGather() const override {
    return options_.residency_budget_bytes > 0;
  }
  /// pread-based copy when a budget is active (the fd is kept open for
  /// this): the rows come out of the page cache without touching the page
  /// tables, so the copy neither grows RSS nor charges the clock. Without a
  /// budget, the default in-place memcpy is used.
  void ReadRowsInto(const int32_t* ids, size_t n, float* out) const override;
  const MmapStore* BackingMmap(size_t* row_offset) const override {
    if (row_offset != nullptr) *row_offset = 0;
    return this;
  }
  std::string DebugName() const override;

  /// Drops every resident page of the mapping now (and resets the budget
  /// clock). Harmless to call while readers are active.
  void ReleaseResidency() const;

 private:
  MmapStore(std::string path, FlatHeader header, void* map, size_t map_bytes,
            Options options);

  std::string path_;
  FlatHeader header_;
  void* map_ = nullptr;
  size_t map_bytes_ = 0;
  /// Clock tick shared by the accounting hooks.
  void ChargeBytes(size_t bytes) const;
  /// The drop itself; caller holds release_mutex_.
  void DropLocked() const;

  Options options_;
  /// Open file descriptor for the pread gather path; -1 when no residency
  /// budget is active (the mapping alone then keeps the file referenced).
  int fd_ = -1;
  size_t page_bytes_ = 4096;
  mutable std::atomic<size_t> touched_bytes_{0};
  mutable std::mutex release_mutex_;
};

}  // namespace storage
}  // namespace lccs

#endif  // LCCS_STORAGE_MMAP_STORE_H_
