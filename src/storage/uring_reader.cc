#include "storage/uring_reader.h"

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

namespace lccs {
namespace storage {

namespace {

// Latched the first time io_uring_setup fails, so a kernel or sandbox that
// rejects io_uring costs one failed syscall per process, not one per query.
std::atomic<bool> g_uring_unsupported{false};

int SysIoUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

// Ring size: an exact-rerank gather is k' = k * overfetch rows (tens); 64
// covers every caller in one chunk without wasting ring pages.
constexpr unsigned kRingEntries = 64;

}  // namespace

UringReader::~UringReader() {
  if (sqes_ != nullptr) munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) close(ring_fd_);
}

bool UringReader::Init() {
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  ring_fd_ = SysIoUringSetup(kRingEntries, &params);
  if (ring_fd_ < 0) return false;
  sq_entries_ = params.sq_entries;

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) {
    sq_ring_bytes_ = cq_ring_bytes_;
  }
  sq_ring_ = mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    return false;
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      return false;
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(struct io_uring_sqe);
  sqes_ = mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    return false;
  }

  auto* sq_base = static_cast<char*>(sq_ring_);
  sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  sq_mask_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  auto* cq_base = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  cq_mask_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  cqes_ = cq_base + params.cq_off.cqes;
  return true;
}

UringReader* UringReader::Get() {
  if (g_uring_unsupported.load(std::memory_order_relaxed)) return nullptr;
  thread_local UringReader reader;
  thread_local bool initialized = false;
  thread_local bool ok = false;
  if (!initialized) {
    initialized = true;
    ok = reader.Init();
    if (!ok) g_uring_unsupported.store(true, std::memory_order_relaxed);
  }
  return ok ? &reader : nullptr;
}

bool UringReader::SubmitChunk(int fd, const Segment* segments, size_t n) {
  auto* sqes = static_cast<struct io_uring_sqe*>(sqes_);
  const unsigned mask = *sq_mask_;
  // The ring is empty between batches (every submit waits for all of its
  // completions below), so slots [tail, tail + n) are always free here.
  unsigned tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
  for (size_t i = 0; i < n; ++i) {
    const unsigned slot = (tail + static_cast<unsigned>(i)) & mask;
    struct io_uring_sqe* sqe = &sqes[slot];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_READ;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(segments[i].buf);
    sqe->len = segments[i].len;
    sqe->off = segments[i].off;
    sqe->user_data = i;
    sq_array_[slot] = slot;
  }
  __atomic_store_n(sq_tail_, tail + static_cast<unsigned>(n),
                   __ATOMIC_RELEASE);

  size_t submitted = 0;
  size_t completed = 0;
  bool all_full = true;
  while (completed < n) {
    const unsigned to_submit =
        static_cast<unsigned>(submitted < n ? n - submitted : 0);
    const int rc =
        SysIoUringEnter(ring_fd_, to_submit,
                        static_cast<unsigned>(n - completed),
                        IORING_ENTER_GETEVENTS);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // Lost track of in-flight reads; poison the ring for this process
      // rather than risk a later batch reaping this one's completions.
      g_uring_unsupported.store(true, std::memory_order_relaxed);
      return false;
    }
    submitted += static_cast<size_t>(rc);
    // Reap what is available; GETEVENTS guarantees progress per call.
    const unsigned cq_mask = *cq_mask_;
    auto* cqes = static_cast<struct io_uring_cqe*>(cqes_);
    unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
    const unsigned cq_tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    while (head != cq_tail) {
      const struct io_uring_cqe* cqe = &cqes[head & cq_mask];
      const size_t idx = static_cast<size_t>(cqe->user_data);
      if (idx >= n || cqe->res < 0 ||
          static_cast<uint32_t>(cqe->res) != segments[idx].len) {
        all_full = false;  // error or short read: caller re-reads via pread
      }
      ++head;
      ++completed;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  }
  return all_full;
}

bool UringReader::ReadBatch(int fd, const Segment* segments, size_t n) {
  bool ok = true;
  for (size_t i = 0; i < n; i += sq_entries_) {
    const size_t chunk = std::min(static_cast<size_t>(sq_entries_), n - i);
    if (!SubmitChunk(fd, segments + i, chunk)) ok = false;
    if (g_uring_unsupported.load(std::memory_order_relaxed)) return false;
  }
  return ok;
}

}  // namespace storage
}  // namespace lccs
