#ifndef LCCS_STORAGE_FLAT_FILE_H_
#define LCCS_STORAGE_FLAT_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "storage/vector_store.h"

namespace lccs {
namespace storage {

/// The LCCS flat vector file — the disk-resident layout MmapStore maps.
///
/// Unlike .fvecs (which prefixes every row with its dimension and therefore
/// cannot be indexed without a scan), a flat file is one validated header
/// followed by the raw row-major float payload, so row i lives at a fixed
/// offset and the whole payload can be handed zero-copy to the SIMD
/// verification kernels:
///
///   offset  size  field
///        0     8  magic  "LCCSFLT1"
///        8     4  format version (uint32, currently 1)
///       12     4  endianness tag (uint32 0x01020304, written natively; a
///                 file produced on the other endianness reads back as
///                 0x04030201 and is rejected)
///       16     8  rows   (uint64)
///       24     8  cols   (uint64)
///       32     8  FNV-1a 64 checksum of the payload bytes
///       40   ...  payload: rows * cols float32, row-major
///
/// All integers little-endian in practice (x86); the endianness tag makes
/// the assumption explicit and checkable. The checksum is verified when a
/// store opens the file (storage/mmap_store.h), so a file truncated,
/// bit-flipped, or rewritten since it was produced fails loudly instead of
/// silently serving wrong neighbors.

inline constexpr char kFlatMagic[8] = {'L', 'C', 'C', 'S', 'F', 'L', 'T', '1'};
inline constexpr uint32_t kFlatVersion = 1;
inline constexpr uint32_t kFlatEndianTag = 0x01020304u;
inline constexpr size_t kFlatHeaderBytes = 40;

struct FlatHeader {
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t checksum = 0;
};

/// Incremental FNV-1a 64 — cheap enough to fold into a streaming write and
/// collision-resistant enough to catch truncation and bit rot (it is an
/// integrity check, not an authenticity one).
class FnvChecksum {
 public:
  void Update(const void* bytes, size_t n);
  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = 14695981039346656037ULL;
};

/// Streaming flat-file writer with O(row) memory: rows are appended through
/// a small buffer while the checksum accumulates, and Finish() seeks back to
/// patch rows + checksum into the header. This is what the fvecs/bvecs
/// converters (dataset/io.h) and DynamicIndex's spill consolidation use, so
/// producing a paper-scale flat file never needs the dataset in RAM.
/// Throws std::runtime_error on any IO failure.
class FlatFileWriter {
 public:
  FlatFileWriter(const std::string& path, size_t cols);
  /// Closes (and on an unfinished stream, removes) the file.
  ~FlatFileWriter();

  FlatFileWriter(const FlatFileWriter&) = delete;
  FlatFileWriter& operator=(const FlatFileWriter&) = delete;

  void AppendRow(const float* row);
  void AppendRows(const float* rows, size_t n);

  size_t rows_written() const { return rows_; }

  /// Flushes, patches the header, closes. Returns the final header.
  FlatHeader Finish();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  size_t cols_ = 0;
  size_t rows_ = 0;
  FnvChecksum checksum_;
  bool finished_ = false;
};

/// Writes an entire store (or matrix, via the implicit InMemoryStore-less
/// overload below) as a flat file. Returns the header.
FlatHeader WriteFlatFile(const std::string& path, const VectorStore& store);
FlatHeader WriteFlatFile(const std::string& path, const util::Matrix& matrix);

/// Reads and validates the header of a flat file: existence, magic, version,
/// endianness, and that the file size matches rows * cols. Does NOT verify
/// the payload checksum (that is the opening store's job — it costs a full
/// read). Throws std::runtime_error naming what is wrong.
FlatHeader ReadFlatHeader(const std::string& path);

}  // namespace storage
}  // namespace lccs

#endif  // LCCS_STORAGE_FLAT_FILE_H_
