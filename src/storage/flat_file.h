#ifndef LCCS_STORAGE_FLAT_FILE_H_
#define LCCS_STORAGE_FLAT_FILE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "storage/vector_store.h"

namespace lccs {
namespace storage {

/// The LCCS flat vector file — the disk-resident layout MmapStore maps.
///
/// Unlike .fvecs (which prefixes every row with its dimension and therefore
/// cannot be indexed without a scan), a flat file is one validated header
/// followed by the raw row-major float payload, so row i lives at a fixed
/// offset and the whole payload can be handed zero-copy to the SIMD
/// verification kernels:
///
///   offset  size  field
///        0     8  magic  "LCCSFLT1"
///        8     4  format version (uint32, currently 1)
///       12     4  endianness tag (uint32 0x01020304, written natively; a
///                 file produced on the other endianness reads back as
///                 0x04030201 and is rejected)
///       16     8  rows   (uint64)
///       24     8  cols   (uint64)
///       32     8  FNV-1a 64 checksum of the payload bytes
///       40   ...  payload: rows * cols float32, row-major
///
/// All integers little-endian in practice (x86); the endianness tag makes
/// the assumption explicit and checkable. The checksum is verified when a
/// store opens the file (storage/mmap_store.h), so a file truncated,
/// bit-flipped, or rewritten since it was produced fails loudly instead of
/// silently serving wrong neighbors.

inline constexpr char kFlatMagic[8] = {'L', 'C', 'C', 'S', 'F', 'L', 'T', '1'};
inline constexpr uint32_t kFlatVersion = 1;
inline constexpr uint32_t kFlatEndianTag = 0x01020304u;
inline constexpr size_t kFlatHeaderBytes = 40;

struct FlatHeader {
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t checksum = 0;
};

/// Incremental FNV-1a 64 — cheap enough to fold into a streaming write and
/// collision-resistant enough to catch truncation and bit rot (it is an
/// integrity check, not an authenticity one).
class FnvChecksum {
 public:
  void Update(const void* bytes, size_t n);
  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = 14695981039346656037ULL;
};

// --- Durability helpers ------------------------------------------------------
// Shared by flat files, WAL segments (serve/wal.h) and checkpoints: every
// file this system promises is durable goes through write-to-temp, fsync the
// file, atomic rename, fsync the directory. All throw std::runtime_error
// naming the path on failure.

/// fflush + fsync of the stream's underlying descriptor.
void FlushAndSyncFile(std::FILE* file, const std::string& path);
/// fsync of a raw descriptor.
void SyncFd(int fd, const std::string& path);
/// fsyncs the directory containing `path`, making a rename/create/unlink
/// inside it durable.
void SyncParentDir(const std::string& path);
/// Atomically publishes `tmp_path` as `final_path`: rename + parent-dir
/// fsync. After a crash the final name either carries the complete file or
/// does not exist — never a half-written one. The temp file must already be
/// fsynced.
void PublishFile(const std::string& tmp_path, const std::string& final_path);

/// Test-only failpoint: when set, invoked at named durability-critical
/// sites (currently "publish:before_rename", between the temp file's fsync
/// and its rename) so crash-recovery tests can simulate a process dying
/// half-way through a publish. Not for production use; set/clear with no
/// writer running.
void SetStorageFailpoint(std::function<void(const char*)> hook);
/// Invokes the installed failpoint hook (no-op when none is set).
void StorageFailpoint(const char* site);

/// Streaming flat-file writer with O(row) memory: rows are appended through
/// a small buffer while the checksum accumulates, and Finish() seeks back to
/// patch rows + checksum into the header. This is what the fvecs/bvecs
/// converters (dataset/io.h) and DynamicIndex's spill consolidation use, so
/// producing a paper-scale flat file never needs the dataset in RAM.
///
/// Durability: the stream writes to `<path>.tmp`; Finish() fsyncs it,
/// renames it onto `path` and fsyncs the directory, so `path` can never name
/// a half-written file after a crash — checkpoints and spill epochs are
/// all-or-nothing.
/// Throws std::runtime_error on any IO failure.
class FlatFileWriter {
 public:
  FlatFileWriter(const std::string& path, size_t cols);
  /// Closes (and on an unfinished stream, removes) the temp file; an
  /// unfinished stream never creates `path` at all.
  ~FlatFileWriter();

  FlatFileWriter(const FlatFileWriter&) = delete;
  FlatFileWriter& operator=(const FlatFileWriter&) = delete;

  void AppendRow(const float* row);
  void AppendRows(const float* rows, size_t n);

  size_t rows_written() const { return rows_; }

  /// Patches the header, fsyncs, closes, and atomically renames the temp
  /// file onto the target path (fsyncing the directory). Returns the final
  /// header.
  FlatHeader Finish();

 private:
  std::string path_;
  std::string tmp_path_;  ///< path_ + ".tmp"; all writes land here
  std::FILE* file_ = nullptr;
  size_t cols_ = 0;
  size_t rows_ = 0;
  FnvChecksum checksum_;
  bool finished_ = false;
};

/// Writes an entire store (or matrix, via the implicit InMemoryStore-less
/// overload below) as a flat file. Returns the header.
FlatHeader WriteFlatFile(const std::string& path, const VectorStore& store);
FlatHeader WriteFlatFile(const std::string& path, const util::Matrix& matrix);

/// Reads and validates the header of a flat file: existence, magic, version,
/// endianness, and that the file size matches rows * cols. Does NOT verify
/// the payload checksum (that is the opening store's job — it costs a full
/// read). Throws std::runtime_error naming what is wrong.
FlatHeader ReadFlatHeader(const std::string& path);

}  // namespace storage
}  // namespace lccs

#endif  // LCCS_STORAGE_FLAT_FILE_H_
