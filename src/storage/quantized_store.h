#ifndef LCCS_STORAGE_QUANTIZED_STORE_H_
#define LCCS_STORAGE_QUANTIZED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "storage/vector_store.h"
#include "util/metric.h"
#include "util/topk.h"

namespace lccs {
namespace storage {

/// Per-dimension scalar-quantized (int8) sibling of a VectorStore — the
/// in-RAM candidate-scoring tier of the two-phase verification pipeline.
///
/// Each float row x is stored as uint8 codes c_j = round((x_j - min_j) /
/// scale_j) with a per-dimension codebook {min_j, scale_j} trained over the
/// whole store, plus one float per row carrying the metric-specific
/// reconstruction term. A query is prepared once into int16 weights
/// (|w| <= 4095), after which scoring a candidate is a single integer dot
/// product (util::simd::DotCodesI8 — AVX2 madd_epi16 with a scalar
/// bit-identical fallback) folded into a float with per-query constants:
///
///   Euclidean: ||q - x̂||² = Σ(q_j - min_j)²            (per query)
///                          - 2 Σ (q_j - min_j) s_j c_j  (the dot product)
///                          + Σ (s_j c_j)²               (per row term)
///   Angular:   q · x̂      = Σ q_j min_j + s_w Σ ŵ_j c_j (dot), combined
///              with the per-row ||x̂||² term into arccos form.
///
/// Codes live on the heap (1 byte/dim + 4 bytes/row) regardless of where
/// the float rows live, so an mmap-backed index can score its whole
/// candidate list without touching disk and fault in only the top
/// k' = k * rerank_overfetch exact rows for the final rerank
/// (bench/disk_store's `quantized` mode). Scores are approximate; the tier
/// never decides final ranks, only which candidates reach the exact pass.
///
/// Immutable after construction and safe for concurrent readers.
class QuantizedStore {
 public:
  /// Per-dimension affine codebook. scale is (max - min) / 255 per
  /// dimension, clamped away from zero for degenerate (constant) dims.
  struct Codebook {
    std::vector<float> mins;
    std::vector<float> scales;
  };

  /// Hard dimension cap: the AVX2 kernel accumulates madd_epi16 pairs in
  /// int32 lanes, exact up to 2 * 255 * 4095 * (8192 / 16) < 2^31.
  static constexpr size_t kMaxDim = 8192;

  /// Quantized scoring approximates magnitudes, which only the dense
  /// metrics tolerate; Hamming/Jaccard read exact bits and gain nothing.
  static bool SupportsMetric(util::Metric metric) {
    return metric == util::Metric::kEuclidean ||
           metric == util::Metric::kAngular;
  }

  /// Scans the store once for per-dimension min/max. Throws on d > kMaxDim.
  static Codebook TrainCodebook(const VectorStore& store);

  /// Encodes every row of `store` under `codebook` (parallel sweep). The
  /// store is only read during construction; the QuantizedStore owns all
  /// its bytes afterwards.
  QuantizedStore(const VectorStore& store, util::Metric metric,
                 Codebook codebook);

  /// TrainCodebook + construct. Returns nullptr for empty stores,
  /// unsupported metrics, or d > kMaxDim — callers treat "no quantized
  /// tier" and "tier not applicable" identically.
  static std::shared_ptr<const QuantizedStore> Build(const VectorStore& store,
                                                     util::Metric metric);

  /// Query-side constants computed once per query, shared across every
  /// candidate scored against it.
  struct PreparedQuery {
    std::vector<int16_t> weights;  ///< quantized per-dim weights, |w|<=4095
    float wscale = 0.0f;           ///< multiplier applied to the int sum
    float bias = 0.0f;             ///< per-query additive term
    float qnorm2 = 0.0f;           ///< ||q||² (Angular only)
    util::Metric metric = util::Metric::kEuclidean;
  };

  PreparedQuery Prepare(const float* query) const;

  /// Encodes one float row into `codes` (cols() bytes) and its per-row
  /// reconstruction term — the primitive DynamicIndex's delta buffer uses
  /// to keep freshly inserted rows scorable under the epoch codebook.
  /// Deterministic (double arithmetic + lround), so re-encoding a row after
  /// deserialization reproduces the bytes exactly.
  void EncodeRow(const float* row, uint8_t* codes, float* term) const;

  /// Scores `n` candidates against a prepared query into out[i] —
  /// approximate distances, ordered like the exact metric. `ids` are
  /// caller-local row numbers; `row_offset` translates them into this
  /// store's rows (the value VectorStore::Quantized reported). ids ==
  /// nullptr means the contiguous rows row_offset .. row_offset + n - 1.
  void ScoreCandidates(const PreparedQuery& q, const int32_t* ids, size_t n,
                       size_t row_offset, float* out) const;

  /// Scores one external code row (e.g. a delta-buffer row encoded with
  /// EncodeRow) that does not live in this store.
  float ScoreCodes(const PreparedQuery& q, const uint8_t* codes,
                   float term) const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  util::Metric metric() const { return metric_; }
  const Codebook& codebook() const { return codebook_; }
  const uint8_t* Codes(size_t row) const { return codes_.data() + row * cols_; }
  float term(size_t row) const { return terms_[row]; }

  /// Heap bytes owned: codes + per-row terms + codebook.
  size_t SizeBytes() const {
    return codes_.size() + terms_.size() * sizeof(float) +
           2 * codebook_.mins.size() * sizeof(float);
  }

  /// Dequantized coordinate x̂_ij, for the reconstruction-error tests.
  float ReconstructAt(size_t i, size_t j) const {
    return codebook_.mins[j] + codebook_.scales[j] * Codes(i)[j];
  }

  /// Persists the codebook (not the codes: they are re-encoded from the
  /// float store at load time, deterministically). Format: magic
  /// "LCCSQNT1", metric u32, cols u64, mins, scales, FNV-1a checksum.
  void SerializeCodebook(std::ostream& out) const;

  /// Validates magic, metric, cols (against `expected_cols`), value
  /// finiteness, and the checksum — all bounds checked before any
  /// allocation, so corrupt input raises std::runtime_error, never
  /// std::bad_alloc.
  static Codebook DeserializeCodebook(std::istream& in, size_t expected_cols);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  util::Metric metric_;
  Codebook codebook_;
  std::vector<uint8_t> codes_;  ///< rows x cols, row-major
  std::vector<float> terms_;    ///< per-row metric term (see class comment)
};

/// --- Serving policy knobs -------------------------------------------------

/// Rerank overfetch factor: the quantized pass keeps k' = max(k,
/// ceil(k * overfetch)) candidates for the exact pass. Default 2.0;
/// overridable via the LCCS_RERANK_OVERFETCH environment variable or
/// SetRerankOverfetch (tests/benchmarks; values < 1 clear the override and
/// fall back to the environment/default).
double RerankOverfetch();
void SetRerankOverfetch(double overfetch);
size_t RerankKeep(size_t k);

/// Escape hatch: quantized candidate scoring is consulted only when this
/// returns true. Default on; LCCS_QUANTIZED=off|0 disables it process-wide
/// without rebuilding anything (the exact path is always still there).
/// SetQuantizedServing overrides the environment: 1 on, 0 off, -1 back to
/// the environment default.
bool QuantizedServingEnabled();
void SetQuantizedServing(int mode);

/// Builds and attaches a quantized sibling to `store` if none is attached
/// yet (first-wins under the store's lock). Returns the attached sibling,
/// or nullptr when the store/metric cannot be quantized. This is the opt-in
/// point: stores never quantize themselves.
const QuantizedStore* EnsureQuantized(
    const std::shared_ptr<const VectorStore>& store, util::Metric metric);

/// The exact second pass of two-phase verification: true distances for the
/// pruned (ascending-id) candidate list, pushed into `topk` with their
/// store-local ids. Heap stores verify in place (one PrefetchRows +
/// VerifyCandidates over the base pointer); stores that prefer copy gathers
/// (a budget-governed MmapStore) have the rows copied into a per-thread
/// scratch first, so the rerank neither faults mapped pages nor advances
/// the residency drop clock. Results are bit-identical between the two
/// paths: same kernels, same candidate order, same tie-breaking.
void ExactRerank(const VectorStore& store, util::Metric metric,
                 const float* query, const int32_t* ids, size_t n,
                 util::TopK& topk);

/// The quantized sibling a query path should score against right now:
/// `store`'s attached sibling, provided the escape hatch is open and the
/// sibling was built for `metric`. Sets `*row_offset` as
/// VectorStore::Quantized does.
const QuantizedStore* ActiveQuantized(const VectorStore* store,
                                      util::Metric metric,
                                      size_t* row_offset);

/// Bounded selector for the quantized pass: keeps the `keep` smallest
/// (score, id) pairs seen and hands them back ordered by ascending id —
/// the deterministic order the exact rerank then scores them in, so the
/// final TopK tie-breaking matches a hypothetical exact-only pass over the
/// same surviving set regardless of quantized score ties.
class RerankSelector {
 public:
  explicit RerankSelector(size_t keep) : keep_(keep) {}

  void Offer(float score, int32_t id) {
    if (heap_.size() < keep_) {
      heap_.emplace(score, id);
    } else if (score < heap_.top().first ||
               (score == heap_.top().first && id < heap_.top().second)) {
      heap_.pop();
      heap_.emplace(score, id);
    }
  }

  /// Drains the selector. The (score, id) max-heap comparison makes the
  /// surviving set deterministic under score ties (larger ids evicted
  /// first), independent of offer order for distinct ids.
  std::vector<int32_t> TakeAscendingIds();

 private:
  size_t keep_;
  std::priority_queue<std::pair<float, int32_t>> heap_;
};

}  // namespace storage
}  // namespace lccs

#endif  // LCCS_STORAGE_QUANTIZED_STORE_H_
