#ifndef LCCS_STORAGE_VECTOR_STORE_H_
#define LCCS_STORAGE_VECTOR_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>

#include "util/matrix.h"

namespace lccs {
namespace storage {

class MmapStore;
class QuantizedStore;

/// Read access to a dense row-major float matrix of base or query vectors —
/// the one data structure every index in this repository verifies candidates
/// against. Splitting it out of util::Matrix lets the same built index run
/// over heap-resident vectors (InMemoryStore), a read-only memory-mapped
/// flat file (MmapStore, storage/mmap_store.h), or a zero-copy row range of
/// either (SliceStore), without the hot query paths paying for the
/// abstraction:
///
/// **Contiguity invariant.** Every VectorStore exposes its rows() x cols()
/// floats as one contiguous row-major block at data(). Row() and data() are
/// therefore non-virtual pointer arithmetic, and the SIMD verification
/// kernels (util::VerifyCandidates / DistanceMany) work off the raw base
/// pointer exactly as they always have — bit-identical results regardless of
/// which store backs the pointer.
///
/// What *is* virtual is advisory: PrefetchRows / PrefetchRange tell the
/// store which rows a verification batch or a build sweep is about to read.
/// The in-memory stores issue cache-line prefetches; MmapStore additionally
/// uses the calls to account touched bytes against an optional residency
/// budget (dropping its pages with madvise once the budget is exceeded) and
/// to trigger read-ahead — the mechanism that keeps paper-scale (10^6+)
/// datasets servable under a fixed RSS ceiling (bench/disk_store).
///
/// Stores are immutable through this interface and safe for concurrent
/// readers; mutation happens only through VectorStoreRef's copy-on-write
/// accessors before a store is shared.
class VectorStore {
 public:
  virtual ~VectorStore() = default;
  // Non-copyable: the cached base_ view would silently keep pointing into
  // the source object's storage. Stores live behind shared_ptrs.
  VectorStore(const VectorStore&) = delete;
  VectorStore& operator=(const VectorStore&) = delete;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Contiguous row-major base pointer (nullptr only for an empty store).
  const float* data() const { return base_; }
  const float* Row(size_t i) const { return base_ + i * cols_; }
  float At(size_t i, size_t j) const { return base_[i * cols_ + j]; }

  /// Bytes addressed by the store (mapped or owned).
  size_t SizeBytes() const { return rows_ * cols_ * sizeof(float); }

  /// Heap bytes actually owned — 0 for a memory-mapped or borrowed store,
  /// SizeBytes() for an in-memory one. What RSS accounting should charge.
  virtual size_t ResidentBytes() const { return SizeBytes(); }

  /// Advises the store that the `n` rows listed in `ids` are about to be
  /// verified (gather access). Default: first-cache-line prefetch per row
  /// plus NoteTouched. Cheap enough for every VerifyCandidates call site.
  virtual void PrefetchRows(const int32_t* ids, size_t n) const;

  /// Advises a sequential sweep over rows [begin, begin + n) — build-time
  /// hashing and blocked scans. Default prefetches the first rows and calls
  /// NoteTouched; MmapStore turns it into read-ahead.
  virtual void PrefetchRange(size_t begin, size_t n) const;

  /// Residency accounting hooks: `n` rows were (or are about to be) read —
  /// NoteTouched for dense sequential ranges (cost ≈ the rows' bytes),
  /// NoteGather for scattered candidate ids (cost ≈ one page per row: the
  /// kernel faults whole pages, so sparse reads occupy far more memory
  /// than they ask for). No-ops except for MmapStore's budget clock;
  /// public so view stores can forward to their parent.
  virtual void NoteTouched(size_t n) const { (void)n; }
  virtual void NoteGather(size_t n) const { NoteTouched(n); }

  /// The memory-mapped flat file ultimately backing this store, if any,
  /// with `*row_offset` set to this store's first row inside it — how
  /// serialization decides it can record path + checksum instead of
  /// inlining floats. nullptr for heap-backed stores.
  virtual const MmapStore* BackingMmap(size_t* row_offset) const {
    (void)row_offset;
    return nullptr;
  }

  /// The int8 quantized sibling attached to this store, if any, with
  /// `*row_offset` set to this store's first row inside it — the same
  /// row-translation contract as BackingMmap, so a SliceStore view of a
  /// quantized base scores its slice-local candidate ids against the right
  /// code rows. nullptr when no quantized tier is attached. Lock-free (one
  /// atomic load); called on every query.
  virtual const QuantizedStore* Quantized(size_t* row_offset) const {
    if (row_offset != nullptr) *row_offset = 0;
    return quantized_raw_.load(std::memory_order_acquire);
  }

  /// Owning handle to the attached quantized sibling (for epoch install and
  /// serialization, which must keep it alive past this store). Null when
  /// none is attached; SliceStore forwards to its parent.
  virtual std::shared_ptr<const QuantizedStore> QuantizedShared() const {
    std::lock_guard<std::mutex> lock(quantized_mu_);
    return quantized_;
  }

  /// Attaches a quantized sibling covering exactly this store's rows.
  /// First-wins: if a sibling is already attached (e.g. two threads raced
  /// EnsureQuantized), the existing one is kept and returned — attachment
  /// is logically const because it never changes the float vectors anyone
  /// reads, only adds an advisory scoring tier.
  const QuantizedStore* AttachQuantized(
      std::shared_ptr<const QuantizedStore> quantized) const;

  /// True when scattered candidate rows should be *copied* out of the store
  /// (ReadRowsInto) rather than read in place through data(). A
  /// budget-governed MmapStore says yes: faulting a scattered row maps a
  /// whole page (and the kernel's fault-around maps ~16), so an in-place
  /// rerank gather both grows residency and advances the drop clock, while
  /// a copy leaves the mapping untouched. Heap stores say no — in-place
  /// reads are already just loads.
  virtual bool PrefersCopyGather() const { return false; }

  /// Copies the `n` rows listed in `ids` into `out` (n * cols() floats,
  /// row-major, in ids order). Default: memcpy from the contiguous base;
  /// MmapStore overrides with pread when a residency budget is active, so
  /// the copy bypasses the mapping entirely (page cache, not page tables).
  virtual void ReadRowsInto(const int32_t* ids, size_t n, float* out) const;

  /// True when holding a shared_ptr to this store guarantees the vectors
  /// themselves stay valid (heap-owned, mmap, or a view of such a store).
  /// BorrowedStore returns false: it pins nothing, the caller's buffer
  /// does — consumers that outlive their caller (DynamicIndex::Build)
  /// must deep-copy such a store instead of retaining it.
  virtual bool KeepsVectorsAlive() const { return true; }

  /// Human-readable description for logs and errors.
  virtual std::string DebugName() const = 0;

 protected:
  VectorStore() = default;

  /// Implementations call this whenever their storage moves (construction,
  /// resize) to keep the non-virtual accessors valid.
  void SetView(const float* base, size_t rows, size_t cols) {
    base_ = base;
    rows_ = rows;
    cols_ = cols;
  }

 private:
  const float* base_ = nullptr;
  size_t rows_ = 0;
  size_t cols_ = 0;
  // Attached quantized sibling. The shared_ptr (under the mutex) owns it;
  // the raw atomic mirrors it so the per-query Quantized() lookup is one
  // acquire load. mutable: see AttachQuantized.
  mutable std::mutex quantized_mu_;
  mutable std::shared_ptr<const QuantizedStore> quantized_;
  mutable std::atomic<const QuantizedStore*> quantized_raw_{nullptr};
};

/// Heap-owned store adopting (or copying) a util::Matrix. The store every
/// synthetic dataset and fvecs load produces by default.
class InMemoryStore : public VectorStore {
 public:
  InMemoryStore() { SetView(nullptr, 0, 0); }
  explicit InMemoryStore(util::Matrix matrix) : matrix_(std::move(matrix)) {
    SetView(matrix_.data(), matrix_.rows(), matrix_.cols());
  }

  const util::Matrix& matrix() const { return matrix_; }

  /// Mutable access for VectorStoreRef's copy-on-write path. Callers must
  /// hold the only reference; indexes built over the store would otherwise
  /// observe the mutation.
  float* MutableData() { return matrix_.data(); }
  float* MutableRow(size_t i) { return matrix_.Row(i); }
  void Resize(size_t rows, size_t cols) {
    matrix_.Resize(rows, cols);
    SetView(matrix_.data(), matrix_.rows(), matrix_.cols());
  }

  std::string DebugName() const override;

 private:
  util::Matrix matrix_;
};

/// Non-owning view over caller-managed rows — how the raw-pointer
/// core::LccsLsh::Build(const float*, n, d) entry points join the store
/// world without copying. The caller guarantees the data outlives the store
/// (the exact contract those entry points always had).
class BorrowedStore : public VectorStore {
 public:
  BorrowedStore(const float* data, size_t rows, size_t cols) {
    SetView(data, rows, cols);
  }
  size_t ResidentBytes() const override { return 0; }
  bool KeepsVectorsAlive() const override { return false; }
  std::string DebugName() const override;
};

/// Zero-copy contiguous row range [first_row, first_row + rows) of a parent
/// store. serve::ShardedIndex hands each shard one of these over the single
/// shared (possibly memory-mapped) base store instead of a private copy.
class SliceStore : public VectorStore {
 public:
  SliceStore(std::shared_ptr<const VectorStore> parent, size_t first_row,
             size_t rows);

  size_t first_row() const { return first_row_; }
  const std::shared_ptr<const VectorStore>& parent() const { return parent_; }

  size_t ResidentBytes() const override { return 0; }
  void PrefetchRows(const int32_t* ids, size_t n) const override;
  void PrefetchRange(size_t begin, size_t n) const override;
  void NoteTouched(size_t n) const override { parent_->NoteTouched(n); }
  void NoteGather(size_t n) const override { parent_->NoteGather(n); }
  const MmapStore* BackingMmap(size_t* row_offset) const override;
  const QuantizedStore* Quantized(size_t* row_offset) const override;
  std::shared_ptr<const QuantizedStore> QuantizedShared() const override;
  bool PrefersCopyGather() const override {
    return parent_->PrefersCopyGather();
  }
  void ReadRowsInto(const int32_t* ids, size_t n, float* out) const override;
  bool KeepsVectorsAlive() const override {
    return parent_->KeepsVectorsAlive();
  }
  std::string DebugName() const override;

 private:
  std::shared_ptr<const VectorStore> parent_;
  size_t first_row_ = 0;
};

/// Value-semantics handle holding a shared VectorStore — the type
/// dataset::Dataset stores its base and query sets in. Reads forward to the
/// store; the mutating accessors (non-const Row/At, MutableData, Resize,
/// assignment from a Matrix) are **copy-on-write**: they mutate in place
/// only while this handle owns the sole reference to an InMemoryStore, and
/// otherwise first clone the current contents into a fresh heap store. That
/// preserves the pre-storage-refactor semantics exactly — an index (or a
/// DynamicIndex epoch) that captured the store keeps seeing the bytes it
/// was built over, while the caller's later writes land in a private copy.
///
/// Copying the handle shares the store (cheap); genuine deep copies happen
/// only on write. Like util::Matrix, the mutating accessors are not
/// thread-safe; concurrent const reads are.
class VectorStoreRef {
 public:
  VectorStoreRef() = default;
  /// Adopts a matrix into a fresh owned InMemoryStore (implicit, so
  /// `ds.data = ReadFvecs(path)` keeps working).
  VectorStoreRef(util::Matrix matrix);  // NOLINT(google-explicit-constructor)
  /// Shares an existing store (implicit for the same reason; templated so a
  /// shared_ptr to any concrete store converts in one step).
  template <typename T,
            typename = std::enable_if_t<
                std::is_convertible_v<T*, const VectorStore*>>>
  VectorStoreRef(std::shared_ptr<T> store)  // NOLINT
      : store_(std::move(store)) {}
  VectorStoreRef& operator=(util::Matrix matrix);

  size_t rows() const { return store_ ? store_->rows() : 0; }
  size_t cols() const { return store_ ? store_->cols() : 0; }
  bool empty() const { return store_ == nullptr || store_->empty(); }
  size_t SizeBytes() const { return store_ ? store_->SizeBytes() : 0; }

  const float* data() const { return store_ ? store_->data() : nullptr; }
  const float* Row(size_t i) const { return store_->Row(i); }
  float At(size_t i, size_t j) const { return store_->At(i, j); }

  /// Copy-on-write mutable accessors (see class comment).
  float* Row(size_t i);
  float& At(size_t i, size_t j);
  float* MutableData();
  /// Replaces the contents with a zero-filled rows x cols heap store.
  void Resize(size_t rows, size_t cols);

  /// The underlying store, for indexes that retain it past the Dataset's
  /// lifetime. Null only for a default-constructed handle.
  std::shared_ptr<const VectorStore> store() const { return store_; }
  const VectorStore* get() const { return store_.get(); }

  void PrefetchRows(const int32_t* ids, size_t n) const {
    if (store_) store_->PrefetchRows(ids, n);
  }
  void PrefetchRange(size_t begin, size_t n) const {
    if (store_) store_->PrefetchRange(begin, n);
  }

 private:
  /// Returns an exclusively-owned InMemoryStore, cloning current contents
  /// (from any store kind) when the store is shared or not heap-backed.
  InMemoryStore* Own();

  std::shared_ptr<const VectorStore> store_;
  /// Set iff store_ points at an InMemoryStore created by this handle (or a
  /// handle it was copied from); aliases the same control block, so
  /// store_.use_count() == 2 means "no one else is watching".
  std::shared_ptr<InMemoryStore> owned_;
};

/// Convenience: wraps caller-managed rows in a shared BorrowedStore.
std::shared_ptr<const VectorStore> WrapBorrowed(const float* data, size_t rows,
                                                size_t cols);

/// Sequential sweep over rows [begin, end) calling `fn(i)` per row, with
/// PrefetchRange advisories issued in ~4 MiB sub-blocks rather than once up
/// front. The granularity matters: a budgeted MmapStore bounds its
/// residency by dropping pages when the advised-bytes clock crosses the
/// budget, and a single whole-range advisory would tick the clock exactly
/// once — before the sweep — letting the faults pile up unaccounted. Every
/// build-time hashing loop reads its rows through this.
template <typename Fn>
void ScanRows(const VectorStore& store, size_t begin, size_t end, Fn&& fn) {
  const size_t row_bytes = store.cols() * sizeof(float);
  const size_t block =
      row_bytes > 0
          ? (row_bytes >= (size_t{4} << 20) ? 1
                                            : (size_t{4} << 20) / row_bytes)
          : end - begin;
  for (size_t b = begin; b < end; b += block) {
    const size_t len = b + block < end ? block : end - b;
    store.PrefetchRange(b, len);
    for (size_t i = b; i < b + len; ++i) fn(i);
  }
}

}  // namespace storage
}  // namespace lccs

#endif  // LCCS_STORAGE_VECTOR_STORE_H_
