#ifndef LCCS_STORAGE_URING_READER_H_
#define LCCS_STORAGE_URING_READER_H_

#include <cstddef>
#include <cstdint>

namespace lccs {
namespace storage {

/// Batched positional reads over io_uring, raw syscalls only (no liburing).
///
/// The quantized tier's exact rerank copy-gathers k' scattered rows per
/// query out of the page cache (storage/mmap_store.cc ReadRowsInto). Issued
/// as one pread(2) per row, the syscall overhead — ~0.5-1us each under
/// modern mitigations — is the single largest serve-time cost of the tier
/// at paper scale (20 rows ≈ 13us against a ~60us query). One ring submit
/// covers the whole gather: every read is queued as an SQE and a single
/// io_uring_enter(submit = n, wait = n) both ships and reaps them.
///
/// One reader per thread (Get() hands out a thread_local instance), so the
/// ring needs no locking and there is never more than one batch in flight
/// per ring: after each ReadBatch the queues are drained back to empty,
/// which keeps the head/tail bookkeeping trivial.
///
/// Fallback, not a dependency: the first failed io_uring_setup (kernel
/// built without it, seccomp sandbox, io_uring_disabled sysctl) latches a
/// process-wide "unsupported" flag, Get() returns nullptr from then on, and
/// every caller keeps its plain pread loop. Short reads inside a batch are
/// reported per segment and finished by the caller the same way.
class UringReader {
 public:
  /// One positional read: `len` bytes at file offset `off` into `buf`.
  struct Segment {
    void* buf;
    uint64_t off;
    uint32_t len;
  };

  ~UringReader();

  UringReader(const UringReader&) = delete;
  UringReader& operator=(const UringReader&) = delete;

  /// The calling thread's reader, or nullptr when io_uring is unavailable
  /// (then callers must use their synchronous fallback).
  static UringReader* Get();

  /// Reads all `n` segments from `fd`. Returns true when every segment
  /// completed with exactly `len` bytes; false on any error or short read —
  /// the caller falls back to pread for the whole batch (re-reading a
  /// prefix that already landed is harmless: reads are idempotent).
  /// Batches larger than the ring are shipped in ring-sized chunks.
  bool ReadBatch(int fd, const Segment* segments, size_t n);

 private:
  UringReader() = default;

  bool Init();
  bool SubmitChunk(int fd, const Segment* segments, size_t n);

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  // Mapped ring state (kernel-shared): see io_uring_setup(2).
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;  ///< == sq_ring_ under IORING_FEAT_SINGLE_MMAP
  size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  void* cqes_ = nullptr;
};

}  // namespace storage
}  // namespace lccs

#endif  // LCCS_STORAGE_URING_READER_H_
