#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, 28 test
# binaries, all benches and examples) with -Wall -Wextra, fail the build on
# any warning in src/ (-DLCCS_WERROR=ON adds -Werror to the lccs library
# target only), then run the full CTest suite.
#
# LCCS_BUILD_TYPE selects the CMake build type (default Release, so the
# -O3-compiled SIMD kernels are what gets tested).
set -euo pipefail

cd "$(dirname "$0")/.."

: "${LCCS_BUILD_TYPE:=Release}"

cmake -B build -S . -DLCCS_WERROR=ON -DCMAKE_BUILD_TYPE="${LCCS_BUILD_TYPE}"
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
