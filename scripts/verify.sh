#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, 25 test
# binaries, all benches and examples) with -Wall -Wextra, fail the build on
# any warning in src/ (-DLCCS_WERROR=ON adds -Werror to the lccs library
# target only), then run the full CTest suite.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DLCCS_WERROR=ON
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
